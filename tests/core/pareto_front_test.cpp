// Regression tests for pareto_front_of's near-duplicate dedup: the
// relative epsilon must be symmetric and purely relative, so
// degenerate near-zero metrics (0-power points) never collapse into
// genuinely different designs, and the surviving representative of a
// near-duplicate group must not depend on evaluation order.
#include "core/dse.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace seamap {
namespace {

DsePoint point(double power_mw, double gamma) {
    DsePoint p;
    p.metrics.power_mw = power_mw;
    p.metrics.gamma = gamma;
    p.metrics.feasible = true;
    return p;
}

TEST(ParetoFront, DegenerateZeroPowerPointsStayDistinct) {
    // Both are non-dominated (power rises as gamma falls). Under an
    // absolute-floored epsilon the 1e-12 mW design collapsed into the
    // 0 mW one; the purely relative comparison keeps both.
    std::vector<DsePoint> points;
    points.push_back(point(0.0, 5.0));
    points.push_back(point(1e-12, 4.0));
    const auto front = pareto_front_of(points);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0].metrics.power_mw, 0.0);
    EXPECT_EQ(front[1].metrics.power_mw, 1e-12);
}

TEST(ParetoFront, NearZeroGammaPairsStayDistinct) {
    std::vector<DsePoint> points;
    points.push_back(point(1.0, 0.0));
    points.push_back(point(2.0, 0.0)); // dominated: same gamma, more power
    points.push_back(point(0.5, 1e-10));
    const auto front = pareto_front_of(points);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0].metrics.power_mw, 0.5);
    EXPECT_EQ(front[1].metrics.gamma, 0.0);
}

TEST(ParetoFront, ExactDuplicatesAndLastUlpTwinsDeduplicate) {
    const double power = 5.25;
    const double gamma = 0.125;
    // A last-ulp twin of an otherwise identical design.
    const double power_ulp = std::nextafter(power, 6.0);
    std::vector<DsePoint> points;
    points.push_back(point(power, gamma));
    points.push_back(point(power, gamma));
    points.push_back(point(power_ulp, gamma));
    const auto front = pareto_front_of(points);
    EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFront, DedupIsSymmetricInInputOrder) {
    // Two mutually non-dominated points whose power AND gamma agree
    // within the relative epsilon: whichever order the two arrive in,
    // the same survivor (first in the deterministic (power, gamma)
    // sort) must be kept.
    const double a_power = 10.0;
    const double b_power = 10.0 * (1.0 + 1e-10);
    std::vector<DsePoint> forward;
    forward.push_back(point(a_power, 3.0));
    forward.push_back(point(b_power, 2.999999999)); // near-equal gamma too
    std::vector<DsePoint> backward(forward.rbegin(), forward.rend());
    const auto front_fwd = pareto_front_of(forward);
    const auto front_bwd = pareto_front_of(backward);
    ASSERT_EQ(front_fwd.size(), front_bwd.size());
    for (std::size_t i = 0; i < front_fwd.size(); ++i) {
        EXPECT_EQ(front_fwd[i].metrics.power_mw, front_bwd[i].metrics.power_mw);
        EXPECT_EQ(front_fwd[i].metrics.gamma, front_bwd[i].metrics.gamma);
    }
}

} // namespace
} // namespace seamap
