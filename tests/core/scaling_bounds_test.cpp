// Soundness harness for the branch-and-bound lower bounds
// (core/scaling_bounds.h): on instances small enough to enumerate the
// COMPLETE mapping space, no bound may ever exceed what some feasible
// design actually achieves — bounds_for() must sit at or below the
// exhaustive per-scaling optimum in each objective, and every feasible
// design must be pointwise >= the bound pair of some powered-core
// case. These are the invariants the explorer's prune soundness
// (pruned best/pareto_front bit-identical to exhaustive) rests on.
#include "core/scaling_bounds.h"

#include "arch/scaling_enumerator.h"
#include "reliability/design_eval.h"
#include "sched/list_scheduler.h"
#include "taskgraph/fig8.h"
#include "tgff/random_graph.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

namespace seamap {
namespace {

/// Every complete mapping of `graph` onto `cores` cores (cores^tasks —
/// keep the instances tiny).
std::vector<Mapping> all_mappings(const TaskGraph& graph, std::size_t cores) {
    std::vector<Mapping> mappings;
    Mapping current(graph.task_count(), cores);
    std::vector<std::size_t> digits(graph.task_count(), 0);
    for (;;) {
        for (TaskId t = 0; t < graph.task_count(); ++t)
            current.assign(t, static_cast<CoreId>(digits[t]));
        mappings.push_back(current);
        std::size_t d = 0;
        while (d < digits.size() && digits[d] == cores - 1) digits[d++] = 0;
        if (d == digits.size()) break;
        ++digits[d];
    }
    return mappings;
}

struct ExhaustiveCheck {
    std::size_t scalings_with_feasible = 0;
    std::size_t feasible_designs = 0;
};

/// Core of the harness: for every scaling combination, evaluate every
/// mapping and require (a) the scalar corner never beats the true
/// optima and (b) each feasible design dominates some case pair.
ExhaustiveCheck check_bounds_sound(const TaskGraph& graph, const MpsocArchitecture& arch,
                                   double deadline_seconds, const SerModel& ser,
                                   ExposurePolicy policy) {
    const ScalingBoundsModel model(graph, arch, deadline_seconds, ser, policy);
    const std::vector<Mapping> mappings = all_mappings(graph, arch.core_count());
    ExhaustiveCheck counts;

    ScalingEnumerator enumerator(arch.core_count(), arch.scaling_table().level_count());
    while (auto levels = enumerator.next()) {
        const ScalingBounds corner = model.bounds_for(*levels);
        const std::vector<ScalingBounds> cases = model.case_bounds_for(*levels);
        const EvaluationContext ctx{graph, arch, *levels, SeuEstimator(ser, policy),
                                    deadline_seconds};
        double best_power = std::numeric_limits<double>::infinity();
        double best_gamma = std::numeric_limits<double>::infinity();
        for (const Mapping& mapping : mappings) {
            const DesignMetrics metrics = evaluate_design(ctx, mapping);
            if (!metrics.feasible) continue;
            ++counts.feasible_designs;
            best_power = std::min(best_power, metrics.power_mw);
            best_gamma = std::min(best_gamma, metrics.gamma);
            // (b): the case of the powered-core set this design uses
            // must admit it. We do not reconstruct the powered set —
            // existence of ANY pointwise-dominated case is the
            // property the explorer's prune test relies on.
            bool admitted = false;
            for (const ScalingBounds& bounds : cases)
                if (bounds.power_mw_lb <= metrics.power_mw &&
                    bounds.gamma_lb <= metrics.gamma) {
                    admitted = true;
                    break;
                }
            EXPECT_TRUE(admitted)
                << "design (P=" << metrics.power_mw << ", G=" << metrics.gamma
                << ") beats every case bound pair";
        }
        if (!std::isinf(best_power)) {
            ++counts.scalings_with_feasible;
            EXPECT_LE(corner.power_mw_lb, best_power)
                << "power bound above the exhaustive optimum";
            EXPECT_LE(corner.gamma_lb, best_gamma)
                << "gamma bound above the exhaustive optimum";
        }
    }
    return counts;
}

TEST(ScalingBounds, SoundOnFig8TwoCores) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.4 * tm_lower_bound_seconds(graph, arch, {1, 1});
    const ExhaustiveCheck counts = check_bounds_sound(graph, arch, deadline, SerModel{},
                                                      ExposurePolicy::full_duration);
    EXPECT_GT(counts.scalings_with_feasible, 0u);
    EXPECT_GT(counts.feasible_designs, 0u);
}

TEST(ScalingBounds, SoundOnFig8BusyOnlyExposure) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.6 * tm_lower_bound_seconds(graph, arch, {1, 1});
    const ExhaustiveCheck counts = check_bounds_sound(graph, arch, deadline, SerModel{},
                                                      ExposurePolicy::busy_only);
    EXPECT_GT(counts.scalings_with_feasible, 0u);
}

TEST(ScalingBounds, SoundOnSmallTgffThreeCores) {
    TgffParams params;
    params.task_count = 7;
    params.batch_count = 1;
    const TaskGraph graph = generate_tgff_graph(params, 11);
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.5 * tm_lower_bound_seconds(graph, arch, {1, 1, 1});
    const ExhaustiveCheck counts = check_bounds_sound(graph, arch, deadline, SerModel{},
                                                      ExposurePolicy::full_duration);
    EXPECT_GT(counts.scalings_with_feasible, 0u);
}

TEST(ScalingBounds, SoundOnPipelinedBatchesWithFourLevels) {
    // Batched graph exercising the pipelined capacity refinement
    // (T_M = L + (B-1)*II) and a four-level ladder, under a steep SER
    // law so the tier telescoping carries real weight.
    TgffParams params;
    params.task_count = 6;
    params.batch_count = 16;
    const TaskGraph graph = generate_tgff_graph(params, 3);
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_four_level());
    SerParams ser_params;
    ser_params.voltage_exponent_k = 4.0;
    const double deadline = 2.5 * tm_lower_bound_seconds(graph, arch, {1, 1});
    const ExhaustiveCheck counts = check_bounds_sound(graph, arch, deadline,
                                                      SerModel{ser_params},
                                                      ExposurePolicy::full_duration);
    EXPECT_GT(counts.scalings_with_feasible, 0u);
}

TEST(ScalingBounds, InfeasibleDeadlineKeepsBoundsHarmless) {
    // With a deadline nothing can meet, whatever the bounds say must
    // never matter; they still must be finite and non-negative.
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    const ScalingBoundsModel model(graph, arch, 1e-9, SerModel{},
                                   ExposurePolicy::full_duration);
    const ScalingBounds bounds = model.bounds_for({1, 1});
    EXPECT_GE(bounds.power_mw_lb, 0.0);
    EXPECT_GE(bounds.gamma_lb, 0.0);
    EXPECT_TRUE(std::isfinite(bounds.power_mw_lb));
    EXPECT_TRUE(std::isfinite(bounds.gamma_lb));
}

TEST(ScalingBounds, CornerIsPointwiseMinOverCases) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.5 * tm_lower_bound_seconds(graph, arch, {1, 1, 1});
    const ScalingBoundsModel model(graph, arch, deadline, SerModel{},
                                   ExposurePolicy::full_duration);
    ScalingEnumerator enumerator(3, 3);
    while (auto levels = enumerator.next()) {
        const ScalingBounds corner = model.bounds_for(*levels);
        const auto cases = model.case_bounds_for(*levels);
        for (const ScalingBounds& bounds : cases) {
            EXPECT_LE(corner.power_mw_lb, bounds.power_mw_lb);
            EXPECT_LE(corner.gamma_lb, bounds.gamma_lb);
        }
    }
}

} // namespace
} // namespace seamap
