// Determinism regression for the parallel explorer: with no wall-clock
// budget, explore() must return bit-identical results for any thread
// count — every scaling combination is searched with the same derived
// seed and the merge folds slots in enumeration order. The guarantee is
// per *strategy*: both built-in search strategies are pinned here.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "util/thread_pool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>
#include <vector>

namespace seamap {
namespace {

DseResult run_explore(const TaskGraph& graph, std::size_t cores, double deadline,
                      std::size_t threads, const std::string& strategy = "optimized") {
    ExploreOptions options;
    options.strategy = strategy;
    options.dse.search.max_iterations = 600;
    options.dse.search.seed = 7;
    options.dse.num_threads = threads;
    const Problem problem = ProblemBuilder()
                                .graph(graph)
                                .architecture(cores, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(deadline)
                                .build();
    return explore(problem, options);
}

void expect_point_identical(const DsePoint& a, const DsePoint& b) {
    EXPECT_EQ(a.levels, b.levels);
    EXPECT_EQ(a.mapping, b.mapping);
    // Exact (bitwise) float comparison on purpose: the searches are
    // identical walks, so every metric must match to the last bit.
    EXPECT_EQ(a.metrics.tm_seconds, b.metrics.tm_seconds);
    EXPECT_EQ(a.metrics.latency_seconds, b.metrics.latency_seconds);
    EXPECT_EQ(a.metrics.register_bits, b.metrics.register_bits);
    EXPECT_EQ(a.metrics.gamma, b.metrics.gamma);
    EXPECT_EQ(a.metrics.power_mw, b.metrics.power_mw);
    EXPECT_EQ(a.metrics.feasible, b.metrics.feasible);
}

void expect_result_identical(const DseResult& a, const DseResult& b) {
    EXPECT_EQ(a.scalings_total, b.scalings_total);
    EXPECT_EQ(a.scalings_enumerated, b.scalings_enumerated);
    EXPECT_EQ(a.scalings_skipped_infeasible, b.scalings_skipped_infeasible);
    EXPECT_EQ(a.scalings_searched, b.scalings_searched);
    ASSERT_EQ(a.feasible_points.size(), b.feasible_points.size());
    for (std::size_t i = 0; i < a.feasible_points.size(); ++i)
        expect_point_identical(a.feasible_points[i], b.feasible_points[i]);
    ASSERT_EQ(a.pareto_front.size(), b.pareto_front.size());
    for (std::size_t i = 0; i < a.pareto_front.size(); ++i)
        expect_point_identical(a.pareto_front[i], b.pareto_front[i]);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) expect_point_identical(*a.best, *b.best);
}

TEST(DseParallel, Fig8BitIdenticalAcrossThreadCounts) {
    const TaskGraph graph = fig8_example_graph();
    const DseResult serial = run_explore(graph, 3, 0.5, 1);
    const DseResult parallel = run_explore(graph, 3, 0.5, 8);
    ASSERT_TRUE(serial.best.has_value());
    expect_result_identical(serial, parallel);
}

TEST(DseParallel, Mpeg2BitIdenticalAcrossThreadCounts) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture two(2, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.3 * tm_lower_bound_seconds(graph, two, {1, 1});
    const DseResult serial = run_explore(graph, 4, deadline, 1);
    const DseResult parallel = run_explore(graph, 4, deadline, 8);
    ASSERT_TRUE(serial.best.has_value());
    expect_result_identical(serial, parallel);
}

TEST(DseParallel, AnnealingStrategyBitIdenticalAcrossThreadCounts) {
    const TaskGraph graph = fig8_example_graph();
    const DseResult serial = run_explore(graph, 3, 0.5, 1, "annealing");
    const DseResult parallel = run_explore(graph, 3, 0.5, 8, "annealing");
    ASSERT_TRUE(serial.best.has_value());
    expect_result_identical(serial, parallel);
}

TEST(DseParallel, ZeroThreadsMeansHardwareConcurrency) {
    // DseParams documents num_threads = 0 as "one per hardware thread",
    // clamped in ThreadPool::resolve_thread_count: 0 and the explicit
    // hardware count must produce identical results (as must serial).
    const TaskGraph graph = fig8_example_graph();
    const DseResult automatic = run_explore(graph, 3, 0.5, 0);
    const DseResult explicit_hw =
        run_explore(graph, 3, 0.5, ThreadPool::hardware_threads());
    const DseResult serial = run_explore(graph, 3, 0.5, 1);
    expect_result_identical(automatic, explicit_hw);
    expect_result_identical(serial, automatic);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    parallel_for_index(hits.size(), 8, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
    EXPECT_THROW(parallel_for_index(64, 4,
                                    [](std::size_t i) {
                                        if (i == 13) throw std::runtime_error("boom");
                                    }),
                 std::runtime_error);
}

} // namespace
} // namespace seamap
