#include "core/optimized_mapping.h"

#include "core/initial_mapping.h"
#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

struct Fixture {
    TaskGraph graph = mpeg2_decoder_graph();
    MpsocArchitecture arch{4, VoltageScalingTable::arm7_three_level()};
    ScalingVector levels = {2, 2, 3, 2};
    EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}},
                          mpeg2_deadline_seconds()};
};

LocalSearchParams quick_params(std::uint64_t seed = 1) {
    LocalSearchParams params;
    params.max_iterations = 2'000;
    params.seed = seed;
    return params;
}

TEST(OptimizedMapping, NeverWorseThanFeasibleInitial) {
    Fixture f;
    const Mapping initial = initial_sea_mapping(f.ctx);
    const DesignMetrics initial_metrics = evaluate_design(f.ctx, initial);
    const OptimizedMapping searcher(quick_params());
    const LocalSearchResult result = searcher.optimize(f.ctx, initial);
    ASSERT_TRUE(result.found_feasible);
    if (initial_metrics.feasible) { EXPECT_LE(result.best_metrics.gamma, initial_metrics.gamma); }
    EXPECT_TRUE(result.best_metrics.feasible);
    EXPECT_TRUE(result.best_mapping.complete());
}

TEST(OptimizedMapping, RunsExactlyTheIterationBudget) {
    Fixture f;
    const OptimizedMapping searcher(quick_params());
    const LocalSearchResult result = searcher.optimize(f.ctx, initial_sea_mapping(f.ctx));
    EXPECT_EQ(result.iterations_run, 2'000u);
}

TEST(OptimizedMapping, DeterministicGivenSeed) {
    Fixture f;
    const Mapping initial = initial_sea_mapping(f.ctx);
    const OptimizedMapping searcher(quick_params(23));
    const LocalSearchResult a = searcher.optimize(f.ctx, initial);
    const LocalSearchResult b = searcher.optimize(f.ctx, initial);
    EXPECT_EQ(a.best_mapping, b.best_mapping);
    EXPECT_DOUBLE_EQ(a.best_metrics.gamma, b.best_metrics.gamma);
}

TEST(OptimizedMapping, ImpossibleDeadlineReturnsClosestDesign) {
    Fixture f;
    EvaluationContext tight{f.graph, f.arch, f.levels, SeuEstimator{SerModel{}}, 1e-6};
    const OptimizedMapping searcher(quick_params());
    const LocalSearchResult result = searcher.optimize(tight, initial_sea_mapping(tight));
    EXPECT_FALSE(result.found_feasible);
    EXPECT_FALSE(result.best_metrics.feasible);
}

TEST(OptimizedMapping, RecoversFeasibilityFromBadStart) {
    // All tasks on one slow core misses the deadline; the search must
    // find its way to a feasible distribution.
    Fixture f;
    const Mapping localized = single_core_mapping(f.graph, 4);
    const DesignMetrics start = evaluate_design(f.ctx, localized);
    ASSERT_FALSE(start.feasible) << "fixture assumption: 1 core at level 2 is too slow";
    LocalSearchParams params = quick_params(5);
    params.max_iterations = 6'000;
    const OptimizedMapping searcher(params);
    const LocalSearchResult result = searcher.optimize(f.ctx, localized);
    EXPECT_TRUE(result.found_feasible);
}

TEST(OptimizedMapping, WallClockBudgetStopsSearch) {
    Fixture f;
    LocalSearchParams params;
    params.max_iterations = 0; // unlimited iterations
    params.time_budget_seconds = 0.05;
    const OptimizedMapping searcher(params);
    const auto start = std::chrono::steady_clock::now();
    const LocalSearchResult result = searcher.optimize(f.ctx, initial_sea_mapping(f.ctx));
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed.count(), 2.0); // generous: budget is 50 ms
    EXPECT_GT(result.iterations_run, 0u);
}

TEST(OptimizedMapping, Validation) {
    Fixture f;
    LocalSearchParams params;
    params.max_iterations = 0;
    params.time_budget_seconds = 0.0;
    EXPECT_THROW(OptimizedMapping{params}, std::invalid_argument);
    params = LocalSearchParams{};
    params.final_temperature = 1.0;
    params.initial_temperature = 0.1;
    EXPECT_THROW(OptimizedMapping{params}, std::invalid_argument);
    params = LocalSearchParams{};
    params.initial_temperature = 0.0;
    EXPECT_THROW(OptimizedMapping{params}, std::invalid_argument);
    params = LocalSearchParams{};
    params.swap_probability = -0.1;
    EXPECT_THROW(OptimizedMapping{params}, std::invalid_argument);

    const OptimizedMapping searcher(quick_params());
    const Mapping incomplete(f.graph.task_count(), 4);
    EXPECT_THROW((void)searcher.optimize(f.ctx, incomplete), std::invalid_argument);
}

} // namespace
} // namespace seamap
