// The opt-in min-power side channel (DseParams::search.track_min_power):
// each scaling's walk can record the cheapest feasible design it passed
// through alongside its min-Gamma pick. Off by default — the result
// schema (and every byte of the JSON document) is unchanged — and when
// on, the recorded points are feasible, never pricier than the walk's
// own pick, and deterministic across thread counts.
#include "core/dse.h"

#include "api/json.h"
#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

DseResult run(bool track, std::size_t threads = 1) {
    DseParams params;
    params.search.max_iterations = 600;
    params.search.seed = 7;
    params.search.track_min_power = track;
    params.num_threads = threads;
    const DesignSpaceExplorer explorer{SerModel{}};
    return explorer.explore(fig8_example_graph(),
                            MpsocArchitecture(3, VoltageScalingTable::arm7_three_level()),
                            0.2, params);
}

TEST(DseMinPower, OffByDefaultAndSchemaUnchanged) {
    LocalSearchParams defaults;
    EXPECT_FALSE(defaults.track_min_power);
    const DseResult result = run(false);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.min_power_points.empty());
    const std::string document = to_json(result).dump();
    EXPECT_EQ(document.find("min_power_points"), std::string::npos);
}

TEST(DseMinPower, TracksOnePointPerFeasibleScaling) {
    const DseResult result = run(true);
    ASSERT_FALSE(result.feasible_points.empty());
    // The Fig. 7 engine records a min-power design whenever the walk
    // found anything feasible, so the two folds stay parallel.
    ASSERT_EQ(result.min_power_points.size(), result.feasible_points.size());
    for (std::size_t i = 0; i < result.min_power_points.size(); ++i) {
        const DsePoint& cheapest = result.min_power_points[i];
        const DsePoint& picked = result.feasible_points[i];
        EXPECT_EQ(cheapest.levels, picked.levels);
        EXPECT_TRUE(cheapest.metrics.feasible);
        // The walk's min-power design can never cost more than its
        // min-Gamma pick — both came from the same evaluation stream.
        EXPECT_LE(cheapest.metrics.power_mw, picked.metrics.power_mw);
    }
    const std::string document = to_json(result).dump();
    EXPECT_NE(document.find("min_power_points"), std::string::npos);
}

TEST(DseMinPower, TrackingLeavesThePickUntouched) {
    const DseResult off = run(false);
    const DseResult on = run(true);
    ASSERT_TRUE(off.best.has_value());
    ASSERT_TRUE(on.best.has_value());
    EXPECT_EQ(off.best->levels, on.best->levels);
    EXPECT_EQ(off.best->mapping.raw(), on.best->mapping.raw());
    EXPECT_EQ(off.feasible_points.size(), on.feasible_points.size());
}

TEST(DseMinPower, DeterministicAcrossThreadCounts) {
    const DseResult serial = run(true, 1);
    const DseResult parallel = run(true, 4);
    ASSERT_EQ(serial.min_power_points.size(), parallel.min_power_points.size());
    for (std::size_t i = 0; i < serial.min_power_points.size(); ++i) {
        EXPECT_EQ(serial.min_power_points[i].levels, parallel.min_power_points[i].levels);
        EXPECT_EQ(serial.min_power_points[i].mapping.raw(),
                  parallel.min_power_points[i].mapping.raw());
    }
}

} // namespace
} // namespace seamap
