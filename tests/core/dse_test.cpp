// Fig. 4 exploration semantics, driven through the public API facade
// (ProblemBuilder -> explore) so the tests pin the surface users call;
// pareto_front_of keeps its direct unit coverage.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"

#include <chrono>
#include <gtest/gtest.h>

namespace seamap {
namespace {

Problem problem_for(const TaskGraph& graph, std::size_t cores, double deadline) {
    return ProblemBuilder()
        .graph(graph)
        .architecture(cores, VoltageScalingTable::arm7_three_level())
        .deadline_seconds(deadline)
        .build();
}

ExploreOptions quick_options(std::uint64_t iterations = 800) {
    ExploreOptions options;
    options.dse.search.max_iterations = iterations;
    options.dse.search.seed = 1;
    return options;
}

TEST(Dse, ExploresAllScalingCombinationsOnFig8) {
    const DseResult result =
        explore(problem_for(fig8_example_graph(), 3, 1.0), quick_options());
    // C(3+3-1, 2) = 10 combinations; with a loose 1 s deadline none are
    // skipped and all are searched.
    EXPECT_EQ(result.scalings_enumerated, 10u);
    EXPECT_EQ(result.scalings_skipped_infeasible, 0u);
    EXPECT_EQ(result.scalings_searched, 10u);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.best->metrics.feasible);
}

TEST(Dse, BestIsMinimumPowerAmongFeasible) {
    const DseResult result =
        explore(problem_for(fig8_example_graph(), 3, 0.2), quick_options());
    ASSERT_TRUE(result.best.has_value());
    for (const DsePoint& point : result.feasible_points)
        EXPECT_GE(point.metrics.power_mw,
                  result.best->metrics.power_mw * (1.0 - 1e-9));
}

TEST(Dse, LooseDeadlinePicksDeepScaling) {
    // With an extremely loose deadline the cheapest design runs every
    // core at the slowest level (or leaves cores empty).
    const DseResult result =
        explore(problem_for(fig8_example_graph(), 2, 1e6), quick_options());
    ASSERT_TRUE(result.best.has_value());
    // The all-slowest combination is feasible, so nothing cheaper exists.
    const DsePoint* slowest = nullptr;
    for (const DsePoint& p : result.feasible_points)
        if (p.levels == ScalingVector{3, 3}) slowest = &p;
    ASSERT_NE(slowest, nullptr);
    EXPECT_LE(result.best->metrics.power_mw, slowest->metrics.power_mw * (1.0 + 1e-9));
}

TEST(Dse, TightDeadlineSkipsSlowScalings) {
    const TaskGraph graph = fig8_example_graph();
    // A deadline moderately above the nominal-speed critical path:
    // tight enough that the slowest scaling combinations cannot make it
    // under any mapping (pre-skipped), loose enough that fast ones can.
    const double critical_path_seconds =
        static_cast<double>(graph.critical_path_cycles(false)) / 200e6;
    const DseResult result = explore(problem_for(graph, 3, critical_path_seconds * 1.5),
                                     quick_options(1'500));
    EXPECT_GT(result.scalings_skipped_infeasible, 0u);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_TRUE(result.best->metrics.feasible);
}

TEST(Dse, ImpossibleDeadlineYieldsNoBest) {
    const DseResult result =
        explore(problem_for(fig8_example_graph(), 3, 1e-9), quick_options());
    EXPECT_FALSE(result.best.has_value());
    EXPECT_TRUE(result.feasible_points.empty());
    EXPECT_EQ(result.scalings_skipped_infeasible, result.scalings_enumerated);
}

TEST(Dse, ParetoFrontIsNonDominatedAndSorted) {
    const DseResult result = explore(
        problem_for(mpeg2_decoder_graph(), 4, mpeg2_deadline_seconds()), quick_options(600));
    ASSERT_FALSE(result.pareto_front.empty());
    for (std::size_t i = 1; i < result.pareto_front.size(); ++i) {
        EXPECT_GE(result.pareto_front[i].metrics.power_mw,
                  result.pareto_front[i - 1].metrics.power_mw);
        // More power only stays on the front if it buys fewer SEUs.
        EXPECT_LT(result.pareto_front[i].metrics.gamma,
                  result.pareto_front[i - 1].metrics.gamma);
    }
    for (const DsePoint& front_point : result.pareto_front)
        for (const DsePoint& other : result.feasible_points) {
            const bool dominates = other.metrics.power_mw < front_point.metrics.power_mw &&
                                   other.metrics.gamma < front_point.metrics.gamma;
            EXPECT_FALSE(dominates);
        }
}

TEST(Dse, RoundRobinSeedAblationStillWorks) {
    ExploreOptions options = quick_options();
    options.dse.use_initial_sea_mapping = false;
    const DseResult result = explore(problem_for(fig8_example_graph(), 3, 1.0), options);
    EXPECT_TRUE(result.best.has_value());
}

TEST(Dse, TimeBudgetLimitsWork) {
    ExploreOptions options = quick_options(200'000); // enormous per-scaling budget
    options.dse.search.time_budget_seconds = 0.02;
    options.dse.total_time_budget_seconds = 0.05;
    const auto start = std::chrono::steady_clock::now();
    const DseResult result =
        explore(problem_for(mpeg2_decoder_graph(), 4, mpeg2_deadline_seconds()), options);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed.count(), 5.0);
    EXPECT_LE(result.scalings_searched, result.scalings_enumerated);
}

TEST(Dse, LegacyExplorerEntryPointMatchesTheFacade) {
    // DesignSpaceExplorer::explore without a strategy must behave
    // exactly like the facade's registry-made "optimized" path — with
    // non-default Fig. 7 tuning, so a registry factory that dropped
    // fields like restarts/sweep_interval would be caught here.
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    DseParams params;
    params.search.max_iterations = 800;
    params.search.seed = 1;
    params.search.restarts = 1;
    params.search.sweep_interval = 7;
    params.search.swap_probability = 0.45;
    const DseResult direct =
        DesignSpaceExplorer{SerModel{}}.explore(graph, arch, 0.2, params);
    ExploreOptions options;
    options.dse = params;
    const DseResult facade = explore(problem_for(fig8_example_graph(), 3, 0.2), options);
    ASSERT_EQ(direct.best.has_value(), facade.best.has_value());
    ASSERT_TRUE(direct.best.has_value());
    EXPECT_EQ(direct.best->levels, facade.best->levels);
    EXPECT_EQ(direct.best->mapping, facade.best->mapping);
    EXPECT_EQ(direct.best->metrics.gamma, facade.best->metrics.gamma);
    EXPECT_EQ(direct.feasible_points.size(), facade.feasible_points.size());
}

TEST(ParetoFrontOf, FiltersDominatedPoints) {
    auto make_point = [](double power, double gamma) {
        DsePoint p;
        p.metrics.power_mw = power;
        p.metrics.gamma = gamma;
        return p;
    };
    const auto front = pareto_front_of(
        {make_point(1.0, 10.0), make_point(2.0, 5.0), make_point(3.0, 6.0),
         make_point(1.5, 10.0), make_point(4.0, 1.0)});
    ASSERT_EQ(front.size(), 3u);
    EXPECT_DOUBLE_EQ(front[0].metrics.power_mw, 1.0);
    EXPECT_DOUBLE_EQ(front[1].metrics.power_mw, 2.0);
    EXPECT_DOUBLE_EQ(front[2].metrics.power_mw, 4.0);
}

} // namespace
} // namespace seamap
