// The equivalence harness pinning the EvalContext fast path to the
// naive evaluate_design() path BIT-IDENTICALLY: full evaluation,
// incremental move/swap re-evaluation and memoized lookups must all
// produce exactly the doubles the naive path produces, across Fig. 8,
// MPEG-2 and seeded random TGFF graphs x every scaling combination —
// and whole searches / explorations driven through either path must
// produce byte-identical results for all strategies and thread counts.
#include "seamap/seamap.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace seamap {
namespace {

struct Workload {
    std::string label;
    TaskGraph graph;
    std::size_t cores;
    double deadline_seconds;
};

std::vector<Workload> workloads() {
    std::vector<Workload> out;
    out.push_back({"fig8", fig8_example_graph(), 3, k_fig8_deadline_seconds});
    out.push_back({"mpeg2", mpeg2_decoder_graph(), 4, mpeg2_deadline_seconds()});
    TgffParams params;
    params.task_count = 16;
    out.push_back({"tgff16", generate_tgff_graph(params, 7), 3,
                   paper_tgff_deadline_seconds(16)});
    return out;
}

Mapping random_mapping(const TaskGraph& graph, std::size_t cores, Rng& rng) {
    Mapping mapping(graph.task_count(), cores);
    for (TaskId t = 0; t < graph.task_count(); ++t)
        mapping.assign(t, static_cast<CoreId>(rng.uniform_int(
                              0, static_cast<std::int64_t>(cores) - 1)));
    return mapping;
}

void expect_bit_identical(const DesignMetrics& fast, const DesignMetrics& naive,
                          const std::string& where) {
    // EXPECT_EQ on doubles is exact comparison — that is the contract.
    EXPECT_EQ(fast.tm_seconds, naive.tm_seconds) << where;
    EXPECT_EQ(fast.latency_seconds, naive.latency_seconds) << where;
    EXPECT_EQ(fast.register_bits, naive.register_bits) << where;
    EXPECT_EQ(fast.gamma, naive.gamma) << where;
    EXPECT_EQ(fast.power_mw, naive.power_mw) << where;
    EXPECT_EQ(fast.feasible, naive.feasible) << where;
}

std::vector<ScalingVector> all_scalings(const MpsocArchitecture& arch) {
    std::vector<ScalingVector> out;
    ScalingEnumerator enumerator(arch.core_count(), arch.scaling_table().level_count());
    while (auto levels = enumerator.next()) out.push_back(std::move(*levels));
    return out;
}

TEST(EvalContextEquivalence, FullEvaluationMatchesNaiveAcrossAllScalings) {
    for (const Workload& w : workloads()) {
        const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
        Rng rng(11);
        for (const ScalingVector& levels : all_scalings(arch)) {
            const EvaluationContext ctx{w.graph, arch, levels, SeuEstimator{SerModel{}},
                                        w.deadline_seconds};
            EvalContext eval(ctx);
            std::vector<Mapping> mappings;
            mappings.push_back(round_robin_mapping(w.graph, w.cores));
            mappings.push_back(single_core_mapping(w.graph, w.cores));
            for (int i = 0; i < 4; ++i) mappings.push_back(random_mapping(w.graph, w.cores, rng));
            for (const Mapping& mapping : mappings) {
                const DesignMetrics naive = evaluate_design(ctx, mapping);
                expect_bit_identical(eval.evaluate(mapping), naive, w.label + " evaluate");
                expect_bit_identical(eval.evaluate_memoized(mapping), naive,
                                     w.label + " memoized miss/insert");
                expect_bit_identical(eval.evaluate_memoized(mapping), naive,
                                     w.label + " memoized hit");
            }
        }
    }
}

TEST(EvalContextEquivalence, IncrementalMoveAndSwapMatchNaive) {
    for (const Workload& w : workloads()) {
        const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
        Rng rng(23);
        // All scalings for the small Fig. 8 graph; a deterministic
        // sample for the larger ones keeps the test fast.
        const auto scalings = all_scalings(arch);
        std::size_t stride = w.label == "fig8" ? 1 : 5;
        for (std::size_t s = 0; s < scalings.size(); s += stride) {
            const EvaluationContext ctx{w.graph, arch, scalings[s], SeuEstimator{SerModel{}},
                                        w.deadline_seconds};
            EvalContext eval(ctx);
            Mapping base = random_mapping(w.graph, w.cores, rng);
            eval.rebase(base);
            // Exhaustive single-task moves off the base.
            for (TaskId t = 0; t < w.graph.task_count(); ++t) {
                for (CoreId core = 0; core < w.cores; ++core) {
                    if (core == base.core_of(t)) continue;
                    Mapping moved = base;
                    moved.assign(t, core);
                    expect_bit_identical(eval.evaluate_move(t, core),
                                         evaluate_design(ctx, moved),
                                         w.label + " move");
                }
            }
            // Random swaps, re-anchoring the base every few steps so
            // rebase-after-acceptance is exercised too.
            for (int i = 0; i < 24; ++i) {
                const auto a = static_cast<TaskId>(rng.uniform_int(
                    0, static_cast<std::int64_t>(w.graph.task_count()) - 1));
                const auto b = static_cast<TaskId>(rng.uniform_int(
                    0, static_cast<std::int64_t>(w.graph.task_count()) - 1));
                if (a == b || base.core_of(a) == base.core_of(b)) continue;
                Mapping swapped = base;
                const CoreId core_a = base.core_of(a);
                swapped.assign(a, base.core_of(b));
                swapped.assign(b, core_a);
                expect_bit_identical(eval.evaluate_swap(a, b),
                                     evaluate_design(ctx, swapped), w.label + " swap");
                if (i % 5 == 4) {
                    base = swapped;
                    expect_bit_identical(eval.rebase(base), evaluate_design(ctx, base),
                                         w.label + " rebase");
                }
            }
        }
    }
}

TEST(EvalContextEquivalence, MemoHitsAreServedWithoutReevaluation) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2, 3}, SeuEstimator{SerModel{}},
                                mpeg2_deadline_seconds()};
    EvalContext eval(ctx);
    const Mapping base = round_robin_mapping(graph, 4);
    eval.rebase(base);
    const DesignMetrics first = eval.evaluate_move(0, 1);
    const auto incremental_before = eval.stats().incremental_evals;
    const DesignMetrics again = eval.evaluate_move(0, 1);
    EXPECT_EQ(eval.stats().incremental_evals, incremental_before)
        << "revisited candidate must be a memo hit, not a re-evaluation";
    EXPECT_GT(eval.stats().memo_hits, 0u);
    expect_bit_identical(again, first, "memo hit");
}

TEST(EvalContextEquivalence, SearchesIdenticalAcrossEvaluationPaths) {
    for (const Workload& w : workloads()) {
        const MpsocArchitecture arch(w.cores, VoltageScalingTable::arm7_three_level());
        ScalingVector levels(w.cores, ScalingLevel{2});
        const EvaluationContext ctx{w.graph, arch, levels, SeuEstimator{SerModel{}},
                                    w.deadline_seconds};
        const Mapping initial = round_robin_mapping(w.graph, w.cores);
        StrategyOptions options;
        options.max_iterations = 400;
        for (const std::string& name : {std::string("optimized"), std::string("annealing")}) {
            const auto strategy = make_search_strategy(name, options);
            EvalOptions naive_options;
            naive_options.naive_reference = true;
            EvalContext naive_eval(ctx, naive_options);
            const LocalSearchResult reference = strategy->search(naive_eval, initial, 99);

            std::vector<EvalOptions> variants(3);
            variants[0] = EvalOptions{}; // full fast path
            variants[1].memoize = false;
            variants[2].incremental = false;
            for (const EvalOptions& variant : variants) {
                EvalContext eval(ctx, variant);
                const LocalSearchResult got = strategy->search(eval, initial, 99);
                const std::string where = w.label + " " + name;
                EXPECT_EQ(got.best_mapping, reference.best_mapping) << where;
                expect_bit_identical(got.best_metrics, reference.best_metrics, where);
                EXPECT_EQ(got.found_feasible, reference.found_feasible) << where;
                EXPECT_EQ(got.iterations_run, reference.iterations_run) << where;
                EXPECT_EQ(got.improvements, reference.improvements) << where;
                EXPECT_EQ(got.evaluations, reference.evaluations) << where;
            }
        }
    }
}

TEST(EvalContextEquivalence, ExploreJsonByteIdenticalAcrossPathsStrategiesAndThreads) {
    const Problem problem = ProblemBuilder()
                                .graph(fig8_example_graph())
                                .architecture(3, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(k_fig8_deadline_seconds)
                                .build();
    for (const std::string& name : {std::string("optimized"), std::string("annealing")}) {
        ExploreOptions options;
        options.strategy = name;
        options.dse.search.max_iterations = 300;
        options.dse.eval.naive_reference = true;
        options.dse.num_threads = 1;
        const std::string reference =
            optimize_report_json(problem, name, explore(problem, options)).dump();
        for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            ExploreOptions fast = options;
            fast.dse.eval = EvalOptions{};
            fast.dse.num_threads = threads;
            const std::string got =
                optimize_report_json(problem, name, explore(problem, fast)).dump();
            EXPECT_EQ(got, reference) << name << " with " << threads << " threads";
        }
    }
}

TEST(EvalContextEquivalence, Validation) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2}, SeuEstimator{SerModel{}},
                                k_fig8_deadline_seconds};
    EvalContext eval(ctx);
    const Mapping incomplete(graph.task_count(), 3);
    EXPECT_THROW((void)eval.evaluate(incomplete), std::invalid_argument);
    EXPECT_THROW((void)eval.evaluate_move(0, 0), std::logic_error); // no base yet
    const Mapping base = round_robin_mapping(graph, 3);
    eval.rebase(base);
    EXPECT_THROW((void)eval.evaluate_move(0, 99), std::invalid_argument);
    EXPECT_THROW((void)eval.evaluate_move(999, 0), std::invalid_argument);
    // Identity mutations short-circuit to the base metrics.
    expect_bit_identical(eval.evaluate_move(0, base.core_of(0)), eval.base_metrics(),
                         "identity move");
    expect_bit_identical(eval.evaluate_swap(1, 1), eval.base_metrics(), "identity swap");
}

} // namespace
} // namespace seamap
