// The lazy scaling generator (core/lazy_scaling_queue.h) must be a
// drop-in replacement for materializing the Fig. 5 sequence: every
// combination pops exactly once, gate verdicts are bit-identical to
// tm_lower_bound_seconds, corner keys match the ScalingBoundsModel,
// and the pop order is invariant to the order successors are pushed
// (the visited-set dedup + strict (key, rank) total order make it a
// pure function of the problem). Exhaustive cross-checks run on small
// spaces where the materialized reference is cheap.
#include "core/lazy_scaling_queue.h"

#include "arch/scaling_enumerator.h"
#include "core/scaling_bounds.h"
#include "sched/list_scheduler.h"
#include "taskgraph/fig8.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace seamap {
namespace {

/// All combinations in Fig. 5 enumeration order, via the materialized
/// enumerator the queue replaces.
std::vector<ScalingVector> materialized(std::size_t cores, std::size_t levels) {
    ScalingEnumerator enumerator(cores, levels);
    std::vector<ScalingVector> all;
    while (auto next = enumerator.next()) all.push_back(*next);
    return all;
}

TEST(LazyScalingQueueRank, MatchesEnumerationIndexAcrossShapes) {
    for (const auto& [cores, levels] : std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1}, {2, 3}, {3, 3}, {4, 2}, {5, 4}, {3, 6}}) {
        const std::vector<ScalingVector> all = materialized(cores, levels);
        for (std::size_t i = 0; i < all.size(); ++i)
            EXPECT_EQ(LazyScalingQueue::rank_of(all[i], levels), i)
                << cores << " cores, " << levels << " levels, index " << i;
    }
}

TEST(LazyScalingQueueRank, RejectsIncreasingTuples) {
    EXPECT_THROW(LazyScalingQueue::rank_of({1, 2}, 3), std::invalid_argument);
    EXPECT_THROW(LazyScalingQueue::rank_of({2, 1, 3}, 3), std::invalid_argument);
}

TEST(LazyScalingQueueSuccessors, CoverTheWholeSpaceFromTheRoot) {
    // BFS over the successor structure from the all-slowest root must
    // reach every combination: that is what makes the lazy frontier
    // complete.
    const std::size_t cores = 4, levels = 3;
    const std::vector<ScalingVector> all = materialized(cores, levels);
    std::set<std::uint64_t> seen;
    std::vector<ScalingVector> frontier{ScalingVector(cores, static_cast<ScalingLevel>(levels))};
    seen.insert(LazyScalingQueue::rank_of(frontier.front(), levels));
    std::vector<ScalingVector> next;
    while (!frontier.empty()) {
        next.clear();
        for (const ScalingVector& combo : frontier) {
            std::vector<ScalingVector> out;
            LazyScalingQueue::successors(combo, out);
            for (ScalingVector& successor : out) {
                // Each successor decrements exactly one position and
                // stays non-increasing.
                std::uint64_t diff = 0;
                for (std::size_t i = 0; i < cores; ++i) {
                    EXPECT_TRUE(i == 0 || successor[i] <= successor[i - 1]);
                    if (successor[i] != combo[i]) {
                        ++diff;
                        EXPECT_EQ(successor[i] + 1, combo[i]);
                    }
                }
                EXPECT_EQ(diff, 1u);
                if (seen.insert(LazyScalingQueue::rank_of(successor, levels)).second)
                    next.push_back(successor);
            }
        }
        frontier.swap(next);
    }
    // Every rank in [0, C(C+L-1, L-1)) reached exactly once.
    EXPECT_EQ(seen.size(), all.size());
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), all.size() - 1);
}

TEST(LazyScalingQueue, UnboundedPopsAreExactlyTheEnumerationOrder) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    const double deadline = 0.2;
    LazyScalingQueue queue(graph, arch, deadline, nullptr);
    const std::vector<ScalingVector> all = materialized(3, 3);
    ASSERT_EQ(queue.total(), all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        auto slot = queue.pop();
        ASSERT_TRUE(slot.has_value()) << "queue dried up at " << i;
        EXPECT_EQ(slot->rank, i);
        EXPECT_EQ(slot->levels, all[i]);
        // Gate verdict bit-identical to the materialized sweep's.
        EXPECT_EQ(slot->gate_passed,
                  tm_lower_bound_seconds(graph, arch, all[i]) <= deadline * (1.0 + 1e-9));
    }
    EXPECT_FALSE(queue.pop().has_value());
    EXPECT_EQ(queue.popped(), all.size());
}

TEST(LazyScalingQueue, BoundedPopsEmitEveryGatePasserWithItsModelCorner) {
    // With a bounds model the pop *order* is a deterministic
    // approximation, but the emitted *set* must still be every
    // combination exactly once, each gate passer carrying exactly the
    // corner the bounds model computes for it.
    TgffParams params;
    params.task_count = 10;
    const TaskGraph graph = generate_tgff_graph(params, 3);
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.5 * tm_lower_bound_seconds(graph, arch, {1, 1, 1, 1});
    const SerModel ser;
    const ScalingBoundsModel model(graph, arch, deadline, ser,
                                   ExposurePolicy::full_duration);
    LazyScalingQueue queue(graph, arch, deadline, &model);
    const std::vector<ScalingVector> all = materialized(4, 3);
    std::map<std::uint64_t, ScalingVector> popped;
    double previous_key = -1.0;
    (void)previous_key;
    while (auto slot = queue.pop()) {
        EXPECT_TRUE(popped.emplace(slot->rank, slot->levels).second)
            << "rank " << slot->rank << " popped twice";
        ASSERT_LT(slot->rank, all.size());
        EXPECT_EQ(slot->levels, all[slot->rank]);
        const bool passes =
            tm_lower_bound_seconds(graph, arch, slot->levels) <= deadline * (1.0 + 1e-9);
        EXPECT_EQ(slot->gate_passed, passes);
        const ScalingBounds corner =
            ScalingBoundsModel::corner_of(model.case_bounds_for(slot->levels));
        if (passes) {
            EXPECT_EQ(slot->corner.power_mw_lb, corner.power_mw_lb);
            EXPECT_EQ(slot->corner.gamma_lb, corner.gamma_lb);
        }
    }
    EXPECT_EQ(popped.size(), all.size());
    EXPECT_EQ(queue.generated(), all.size());
}

TEST(LazyScalingQueue, PopSequenceInvariantUnderSuccessorShuffles) {
    // The successor push order is an implementation detail; the dedup
    // bitmap and the strict (key, rank) heap order must make the pop
    // sequence identical for any shuffle of it.
    TgffParams params;
    params.task_count = 8;
    const TaskGraph graph = generate_tgff_graph(params, 11);
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_four_level());
    const double deadline = 1.6 * tm_lower_bound_seconds(graph, arch, {1, 1, 1});
    const SerModel ser;
    const ScalingBoundsModel model(graph, arch, deadline, ser,
                                   ExposurePolicy::full_duration);
    std::vector<std::vector<std::uint64_t>> sequences;
    for (const std::uint64_t shuffle : {0ull, 1ull, 0xdecafbadULL}) {
        LazyScalingQueue queue(graph, arch, deadline, &model, shuffle);
        std::vector<std::uint64_t> ranks;
        while (auto slot = queue.pop()) ranks.push_back(slot->rank);
        sequences.push_back(std::move(ranks));
    }
    EXPECT_EQ(sequences[0], sequences[1]);
    EXPECT_EQ(sequences[0], sequences[2]);
    EXPECT_EQ(sequences[0].size(), materialized(3, 4).size());
}

TEST(LazyScalingQueue, CountersTrackPopsAndGeneration) {
    const TaskGraph graph = fig8_example_graph();
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    LazyScalingQueue queue(graph, arch, 1.0, nullptr);
    EXPECT_EQ(queue.total(), 6u); // C(2+3-1, 3-1)
    EXPECT_EQ(queue.popped(), 0u);
    EXPECT_GE(queue.generated(), 1u);
    ASSERT_TRUE(queue.pop().has_value());
    EXPECT_EQ(queue.popped(), 1u);
    while (queue.pop()) {
    }
    EXPECT_EQ(queue.popped(), queue.total());
    EXPECT_EQ(queue.generated(), queue.total());
}

} // namespace
} // namespace seamap
