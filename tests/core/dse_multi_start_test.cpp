// The multi-start payoff contract (DseParams::multi_start): each
// scaling folds K independent mapping searches best-of-K, start 0
// being exactly the single-start walk — so growing K can only improve
// (never worsen) each scaling's folded Gamma and the minimum Gamma
// over all feasible designs, the feasible set can only grow, and for
// any fixed K the result is deterministic and thread-count invariant.
// bm_multi_start_saturation measures what this property costs.
#include "seamap/seamap.h"

#include "core/lazy_scaling_queue.h"

#include "sched/list_scheduler.h"
#include "taskgraph/fig8.h"
#include "tgff/random_graph.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace seamap {
namespace {

void expect_point_identical(const DsePoint& a, const DsePoint& b) {
    EXPECT_EQ(a.levels, b.levels);
    EXPECT_EQ(a.mapping, b.mapping);
    EXPECT_EQ(a.metrics.tm_seconds, b.metrics.tm_seconds);
    EXPECT_EQ(a.metrics.gamma, b.metrics.gamma);
    EXPECT_EQ(a.metrics.power_mw, b.metrics.power_mw);
}

void expect_result_identical(const DseResult& a, const DseResult& b) {
    ASSERT_EQ(a.feasible_points.size(), b.feasible_points.size());
    for (std::size_t i = 0; i < a.feasible_points.size(); ++i)
        expect_point_identical(a.feasible_points[i], b.feasible_points[i]);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) expect_point_identical(*a.best, *b.best);
}

DseResult run(const Problem& problem, std::size_t multi_start, std::size_t threads) {
    ExploreOptions options;
    options.dse.prune = false; // full coverage: every scaling's fold is visible
    options.dse.num_threads = threads;
    options.dse.multi_start = multi_start;
    options.dse.search.max_iterations = 150;
    options.dse.search.seed = 17;
    return explore(problem, options);
}

double min_gamma(const DseResult& result) {
    double best = std::numeric_limits<double>::infinity();
    for (const DsePoint& point : result.feasible_points)
        if (point.metrics.gamma < best) best = point.metrics.gamma;
    return best;
}

void check_payoff(const Problem& problem) {
    const std::vector<std::size_t> ks{1, 2, 4};
    std::vector<DseResult> results;
    const std::size_t level_count =
        problem.architecture().scaling_table().level_count();
    for (const std::size_t k : ks) results.push_back(run(problem, k, 1));

    for (std::size_t i = 1; i < results.size(); ++i) {
        SCOPED_TRACE("multi_start " + std::to_string(ks[i - 1]) + " -> " +
                     std::to_string(ks[i]));
        const DseResult& smaller = results[i - 1];
        const DseResult& larger = results[i];
        // The start-seed set of K is a prefix of K+1's, so best-of-K
        // folds are monotone per scaling...
        std::map<std::uint64_t, double> folded;
        for (const DsePoint& point : larger.feasible_points)
            folded.emplace(LazyScalingQueue::rank_of(point.levels, level_count), point.metrics.gamma);
        // ...the feasible set only grows...
        EXPECT_GE(larger.feasible_points.size(), smaller.feasible_points.size());
        for (const DsePoint& point : smaller.feasible_points) {
            const auto at = folded.find(LazyScalingQueue::rank_of(point.levels, level_count));
            ASSERT_NE(at, folded.end())
                << "a scaling feasible at K=" << ks[i - 1] << " vanished at K=" << ks[i];
            EXPECT_LE(at->second, point.metrics.gamma);
        }
        // ...and so does the global minimum Gamma.
        if (!smaller.feasible_points.empty()) {
            EXPECT_LE(min_gamma(larger), min_gamma(smaller));
        }
    }

    // Fixed K: deterministic rerun, bit-identical at every thread count.
    expect_result_identical(results.back(), run(problem, 4, 1));
    expect_result_identical(results.back(), run(problem, 4, 8));
}

TEST(DseMultiStart, PayoffOnFig8) {
    const Problem problem = ProblemBuilder()
                                .graph(fig8_example_graph())
                                .architecture(3, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(0.2)
                                .build();
    check_payoff(problem);
}

TEST(DseMultiStart, PayoffOnRandomTgff) {
    TgffParams params;
    params.task_count = 12;
    const TaskGraph graph = generate_tgff_graph(params, 5);
    const MpsocArchitecture probe(3, VoltageScalingTable::arm7_three_level());
    const double deadline = 1.5 * tm_lower_bound_seconds(graph, probe, {1, 1, 1});
    const Problem problem = ProblemBuilder()
                                .graph(graph)
                                .architecture(3, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(deadline)
                                .build();
    check_payoff(problem);
}

} // namespace
} // namespace seamap
