// Counting replacements for the global allocation functions. See
// alloc_guard.h for the contract. Built as a CMake OBJECT library so
// the object file is always handed to the linker (a static archive
// member holding only replacement operators could be skipped entirely,
// silently disabling the guard).
#include "support/alloc_guard.h"

#include <cstdlib>
#include <new>

namespace seamap::testing {
namespace {

thread_local std::uint64_t t_allocations = 0;
thread_local std::uint64_t t_deallocations = 0;

#if SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE
void* counted_alloc(std::size_t size) noexcept {
    ++t_allocations;
    // malloc(0) may return nullptr; operator new must return a unique
    // pointer instead.
    return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) noexcept {
    ++t_allocations;
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
    return std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
}

void counted_free(void* ptr) noexcept {
    if (ptr == nullptr) return;
    ++t_deallocations;
    std::free(ptr);
}
#endif // SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE

} // namespace

std::uint64_t thread_allocation_count() { return t_allocations; }
std::uint64_t thread_deallocation_count() { return t_deallocations; }

bool counting_allocator_active() {
    const std::uint64_t before = t_allocations;
    delete new int(0);
    return t_allocations == before + 1;
}

} // namespace seamap::testing

// ---------------------------------------------------------------------
// Global replacements. Every throwing/nothrow/aligned/array form routes
// through the two helpers above; sized deletes forward to the unsized
// free (the size hint is only an optimization license). Compiled out
// under sanitizers: their runtimes own the allocation functions, and
// the tests skip via SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE instead.
#if SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE

void* operator new(std::size_t size) {
    if (void* p = seamap::testing::counted_alloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    if (void* p = seamap::testing::counted_alloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return seamap::testing::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return seamap::testing::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
    if (void* p = seamap::testing::counted_aligned_alloc(
            size, static_cast<std::size_t>(alignment)))
        return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
    if (void* p = seamap::testing::counted_aligned_alloc(
            size, static_cast<std::size_t>(alignment)))
        return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
    return seamap::testing::counted_aligned_alloc(size,
                                                  static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
    return seamap::testing::counted_aligned_alloc(size,
                                                  static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { seamap::testing::counted_free(ptr); }
void operator delete[](void* ptr) noexcept { seamap::testing::counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { seamap::testing::counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { seamap::testing::counted_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { seamap::testing::counted_free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { seamap::testing::counted_free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
    seamap::testing::counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
    seamap::testing::counted_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
    seamap::testing::counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
    seamap::testing::counted_free(ptr);
}

#endif // SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE
