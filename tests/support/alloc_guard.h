// Runtime allocation guard for the zero-steady-state-allocation
// contract. tests/support/alloc_guard.cpp replaces the global
// operator new/delete with counting wrappers (linked into every test
// executable as an object library, so the replacements are guaranteed
// to be picked over the toolchain's), and this header exposes scoped
// sampling of the per-thread counts.
//
// Together with seamap_lint's static hot-path-alloc rule this turns
// the PR 3 claim — "EvalContext steady-state evaluation performs no
// heap allocation" — into a hard test instead of a comment:
// tests/core/eval_context_alloc_test.cpp fails if a single byte is
// allocated in the steady-state eval or suffix-reschedule loops.
//
// Counters are thread_local, so a guard only observes allocations made
// by the thread that created it — other test threads (gtest internals,
// sanitizer runtimes) never pollute a measurement.
#pragma once

#include <cstdint>

// Sanitizer runtimes interpose the global allocation functions, so the
// counting replacements cannot be active under ASan/TSan/MSan — the
// replacements are compiled out there and allocation-budget tests skip
// (gated on this macro so a missing guard still FAILS in plain builds).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE 0
#endif
#endif
#ifndef SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE
#define SEAMAP_ALLOC_GUARD_EXPECTED_ACTIVE 1
#endif

namespace seamap::testing {

/// Allocations performed by this thread since it started (every form
/// of operator new, including nothrow and aligned).
std::uint64_t thread_allocation_count();

/// Matching deallocation count for this thread.
std::uint64_t thread_deallocation_count();

/// True when the counting operator new/delete replacements are the
/// ones actually linked in — a test should assert this once before
/// trusting any measurement, so a silent link-order regression fails
/// loudly instead of making every guard read 0.
bool counting_allocator_active();

/// Scoped sample: counts allocations/deallocations on the constructing
/// thread between construction and the query.
class AllocationGuard {
public:
    AllocationGuard()
        : start_allocs_(thread_allocation_count()),
          start_deallocs_(thread_deallocation_count()) {}

    std::uint64_t allocations() const {
        return thread_allocation_count() - start_allocs_;
    }
    std::uint64_t deallocations() const {
        return thread_deallocation_count() - start_deallocs_;
    }

private:
    std::uint64_t start_allocs_;
    std::uint64_t start_deallocs_;
};

} // namespace seamap::testing
