// Checks the Fig. 8 worked example against the published register
// table (Fig. 8b) and task register usage (Fig. 8c).
#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

#include <array>

namespace seamap {
namespace {

TEST(Fig8, SixTasksWithPublishedCosts) {
    const TaskGraph graph = fig8_example_graph();
    ASSERT_EQ(graph.task_count(), 6u);
    const std::array<std::uint64_t, 6> units = {5, 4, 4, 5, 6, 4};
    for (TaskId t = 0; t < 6; ++t)
        EXPECT_EQ(graph.task(t).exec_cycles, units[t] * k_fig8_cost_unit);
}

TEST(Fig8, RegisterTableMatchesFig8b) {
    const TaskGraph graph = fig8_example_graph();
    const RegisterFile& regs = graph.register_file();
    ASSERT_EQ(regs.size(), 9u);
    const std::array<std::uint64_t, 9> widths = {4096, 2048, 2048, 5120, 4096, 2048, 2048, 4096,
                                                 2048};
    for (RegisterId r = 0; r < 9; ++r) {
        EXPECT_EQ(regs.bits(r), widths[r]);
        std::string expected_name = "r";
        expected_name += std::to_string(r + 1);
        EXPECT_EQ(regs.name(r), expected_name);
    }
}

TEST(Fig8, TaskRegisterUsageMatchesFig8c) {
    const TaskGraph graph = fig8_example_graph();
    // Expected total bits per task from Fig. 8(c):
    // t1=[r1,r2,r3]=8192, t2=[r2,r4,r5,r6]=13312, t3=[r4,r5,r6]=11264,
    // t4=[r5,r6,r7]=8192, t5=[r6,r7,r8]=8192, t6=[r7,r8,r9]=8192.
    const std::array<std::uint64_t, 6> bits = {8192, 13312, 11264, 8192, 8192, 8192};
    for (TaskId t = 0; t < 6; ++t) EXPECT_EQ(graph.task_register_bits(t), bits[t]) << "t" << t + 1;
}

TEST(Fig8, SharingStructure) {
    const TaskGraph graph = fig8_example_graph();
    // Adjacent tasks in the r-chain overlap; endpoints do not.
    EXPECT_EQ(graph.shared_register_bits(0, 1), 2048u);   // t1 & t2 share r2
    EXPECT_EQ(graph.shared_register_bits(1, 2), 11264u);  // t2 & t3 share r4,r5,r6
    EXPECT_EQ(graph.shared_register_bits(4, 5), 6144u);   // t5 & t6 share r7,r8
    EXPECT_EQ(graph.shared_register_bits(0, 5), 0u);      // t1 & t6 disjoint
}

TEST(Fig8, DagShapeSupportsWalkthrough) {
    const TaskGraph graph = fig8_example_graph();
    EXPECT_NO_THROW(graph.validate());
    // t1's dependents are {t2, t3} (the walkthrough's first L).
    EXPECT_EQ(graph.successors(0), (std::vector<TaskId>{1, 2}));
    // t3's dependents include t4 and t5.
    const auto deps = graph.successors(2);
    EXPECT_NE(std::find(deps.begin(), deps.end(), 3u), deps.end());
    EXPECT_NE(std::find(deps.begin(), deps.end(), 4u), deps.end());
    // t6 is the sink.
    EXPECT_EQ(graph.sink_tasks(), (std::vector<TaskId>{5}));
}

TEST(Fig8, DeadlineConstant) { EXPECT_DOUBLE_EQ(k_fig8_deadline_seconds, 0.075); }

} // namespace
} // namespace seamap
