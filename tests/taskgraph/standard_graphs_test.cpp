#include "taskgraph/standard_graphs.h"

#include "sched/list_scheduler.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

TEST(FftGraph, StructureForEightPoints) {
    // log2 = 3: 3 ranks x 4 butterflies.
    const TaskGraph graph = fft_task_graph(3);
    EXPECT_EQ(graph.task_count(), 12u);
    EXPECT_NO_THROW(graph.validate());
    // Rank 0 butterflies are the only sources.
    EXPECT_EQ(graph.source_tasks().size(), 4u);
    // Every rank-1+ butterfly has exactly two producers.
    for (TaskId t = 4; t < 12; ++t) EXPECT_EQ(graph.predecessors(t).size(), 2u) << "task " << t;
}

TEST(FftGraph, WideGraphsParallelizeWell) {
    // An FFT has per-rank parallelism equal to half the point count;
    // four cores must beat one core on makespan comfortably.
    const TaskGraph graph = fft_task_graph(4);
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Schedule spread =
        ListScheduler{}.schedule(graph, round_robin_mapping(graph, 4), arch, {1, 1, 1, 1});
    const Schedule serial =
        ListScheduler{}.schedule(graph, single_core_mapping(graph, 4), arch, {1, 1, 1, 1});
    EXPECT_LT(spread.total_time_seconds, 0.6 * serial.total_time_seconds);
}

TEST(FftGraph, ParamValidation) {
    EXPECT_THROW((void)fft_task_graph(0), std::invalid_argument);
    EXPECT_THROW((void)fft_task_graph(11), std::invalid_argument);
    StandardGraphParams params;
    params.base_exec_cycles = 0;
    EXPECT_THROW((void)fft_task_graph(3, params), std::invalid_argument);
}

TEST(GaussianGraph, TriangularStructure) {
    const std::uint32_t n = 5;
    const TaskGraph graph = gaussian_elimination_task_graph(n);
    // Tasks: sum over k of (1 pivot + n-k-1 updates) = 4+3+2+1 pivots+updates.
    std::size_t expected = 0;
    for (std::uint32_t k = 0; k + 1 < n; ++k) expected += 1 + (n - k - 1);
    EXPECT_EQ(graph.task_count(), expected);
    EXPECT_NO_THROW(graph.validate());
    // Single source: the first pivot.
    EXPECT_EQ(graph.source_tasks().size(), 1u);
    EXPECT_EQ(graph.task(graph.source_tasks()[0]).name, "pivot_0");
}

TEST(GaussianGraph, ParallelismShrinksTowardTheEnd) {
    // The last pivot's update set is a single task — the tail is serial,
    // so adding cores has diminishing returns compared with the FFT.
    const TaskGraph graph = gaussian_elimination_task_graph(8);
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Schedule spread =
        ListScheduler{}.schedule(graph, round_robin_mapping(graph, 4), arch, {1, 1, 1, 1});
    const double critical_path_seconds =
        static_cast<double>(graph.critical_path_cycles(false)) / 200e6;
    // Makespan is critical-path-bound well before core count 4.
    EXPECT_GT(critical_path_seconds, 0.4 * spread.total_time_seconds);
}

TEST(GaussianGraph, ParamValidation) {
    EXPECT_THROW((void)gaussian_elimination_task_graph(1), std::invalid_argument);
    EXPECT_THROW((void)gaussian_elimination_task_graph(65), std::invalid_argument);
}

TEST(PipelineGraph, StagesTimesWidthTasks) {
    const TaskGraph graph = pipeline_task_graph(5, 3);
    EXPECT_EQ(graph.task_count(), 15u);
    EXPECT_NO_THROW(graph.validate());
    EXPECT_EQ(graph.source_tasks().size(), 3u); // stage 0
    EXPECT_EQ(graph.sink_tasks().size(), 3u);   // last stage
}

TEST(PipelineGraph, BatchingEnablesPipelining) {
    StandardGraphParams params;
    params.batch_count = 50;
    const TaskGraph graph = pipeline_task_graph(4, 2, params);
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Schedule spread =
        ListScheduler{}.schedule(graph, round_robin_mapping(graph, 4), arch, {1, 1, 1, 1});
    const Schedule serial =
        ListScheduler{}.schedule(graph, single_core_mapping(graph, 4), arch, {1, 1, 1, 1});
    // With 50 batches the spread mapping approaches 4x throughput.
    EXPECT_LT(spread.total_time_seconds, 0.45 * serial.total_time_seconds);
}

TEST(PipelineGraph, ParamValidation) {
    EXPECT_THROW((void)pipeline_task_graph(0, 2), std::invalid_argument);
    EXPECT_THROW((void)pipeline_task_graph(2, 0), std::invalid_argument);
    EXPECT_THROW((void)pipeline_task_graph(100, 100), std::invalid_argument);
}

TEST(StandardGraphs, ProducersShareBuffersWithConsumers) {
    for (const TaskGraph& graph :
         {fft_task_graph(3), gaussian_elimination_task_graph(4), pipeline_task_graph(3, 2)}) {
        for (const Edge& e : graph.edges())
            EXPECT_GT(graph.shared_register_bits(e.src, e.dst), 0u)
                << graph.name() << " edge " << e.src << "->" << e.dst;
    }
}

} // namespace
} // namespace seamap
