#include "taskgraph/dot.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

namespace seamap {
namespace {

TEST(Dot, StructuralExportContainsNodesAndEdges) {
    const TaskGraph graph = fig8_example_graph();
    const std::string dot = to_dot(graph);
    EXPECT_NE(dot.find("digraph \"fig8_example\""), std::string::npos);
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        std::ostringstream node;
        node << "t" << t << " [label=\"" << graph.task(t).name;
        EXPECT_NE(dot.find(node.str()), std::string::npos) << "missing node " << t;
    }
    EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
    EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Dot, MappedExportColorsByCore) {
    const TaskGraph graph = fig8_example_graph();
    const std::array<std::uint32_t, 6> cores = {0, 1, 0, 1, 2, 2};
    std::ostringstream os;
    write_dot_mapped(os, graph, cores);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("core 0"), std::string::npos);
    EXPECT_NE(dot.find("core 2"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(Dot, MappedExportChecksSize) {
    const TaskGraph graph = fig8_example_graph();
    const std::array<std::uint32_t, 2> too_short = {0, 1};
    std::ostringstream os;
    EXPECT_THROW(write_dot_mapped(os, graph, too_short), std::invalid_argument);
}

} // namespace
} // namespace seamap
