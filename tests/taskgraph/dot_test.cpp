#include "taskgraph/dot.h"

#include "taskgraph/fig8.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace seamap {
namespace {

/// Decode a DOT double-quoted string body: \" -> ", \\ -> \, and the
/// label escapes \n / \r back to line breaks. Returns nullopt on a
/// dangling backslash or an unknown escape — i.e. invalid DOT.
std::optional<std::string> dot_unescape(std::string_view body) {
    std::string out;
    for (std::size_t i = 0; i < body.size(); ++i) {
        if (body[i] != '\\') {
            out += body[i];
            continue;
        }
        if (++i == body.size()) return std::nullopt;
        switch (body[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        default: return std::nullopt;
        }
    }
    return out;
}

/// Structural view of a DOT export: quoted strings must lex (no raw
/// quote can terminate one early), and every node's decoded label is
/// collected keyed by its tN id.
struct ParsedDot {
    std::string graph_name;
    std::vector<std::string> node_labels; // index = node id
    std::size_t edge_count = 0;
};

ParsedDot parse_dot(const std::string& dot, std::size_t node_count) {
    ParsedDot parsed;
    parsed.node_labels.resize(node_count);
    std::istringstream lines(dot);
    std::string line;
    // Every quoted string is lexed with DOT's rule (a backslash escapes
    // the next character); the body must then decode cleanly.
    auto quoted_body = [](const std::string& text, std::size_t open) {
        std::size_t i = open + 1;
        bool escaped = false;
        while (i < text.size()) {
            if (escaped)
                escaped = false;
            else if (text[i] == '\\')
                escaped = true;
            else if (text[i] == '"')
                break;
            ++i;
        }
        EXPECT_LT(i, text.size()) << "unterminated quoted string: " << text;
        return text.substr(open + 1, i - open - 1);
    };
    while (std::getline(lines, line)) {
        if (line.rfind("digraph ", 0) == 0) {
            const auto body = dot_unescape(quoted_body(line, line.find('"')));
            EXPECT_TRUE(body.has_value()) << line;
            if (body) parsed.graph_name = *body;
        } else if (line.find("->") != std::string::npos) {
            ++parsed.edge_count;
        } else if (line.rfind("  t", 0) == 0 && line.find("[label=") != std::string::npos) {
            const std::size_t id = std::stoul(line.substr(3));
            EXPECT_LT(id, parsed.node_labels.size());
            const auto label = dot_unescape(quoted_body(line, line.find('"')));
            EXPECT_TRUE(label.has_value()) << line;
            if (id < parsed.node_labels.size() && label) parsed.node_labels[id] = *label;
        }
    }
    return parsed;
}

TEST(Dot, StructuralExportContainsNodesAndEdges) {
    const TaskGraph graph = fig8_example_graph();
    const std::string dot = to_dot(graph);
    EXPECT_NE(dot.find("digraph \"fig8_example\""), std::string::npos);
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        std::ostringstream node;
        node << "t" << t << " [label=\"" << graph.task(t).name;
        EXPECT_NE(dot.find(node.str()), std::string::npos) << "missing node " << t;
    }
    EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
    EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Dot, MappedExportColorsByCore) {
    const TaskGraph graph = fig8_example_graph();
    const std::array<std::uint32_t, 6> cores = {0, 1, 0, 1, 2, 2};
    std::ostringstream os;
    write_dot_mapped(os, graph, cores);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("core 0"), std::string::npos);
    EXPECT_NE(dot.find("core 2"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(Dot, MappedExportChecksSize) {
    const TaskGraph graph = fig8_example_graph();
    const std::array<std::uint32_t, 2> too_short = {0, 1};
    std::ostringstream os;
    EXPECT_THROW(write_dot_mapped(os, graph, too_short), std::invalid_argument);
}

TEST(Dot, NamesNeedingQuotingRoundTripStructurally) {
    // Names with every character class that can break a DOT quoted
    // string: quotes, backslashes (also trailing), line breaks.
    const std::vector<std::string> names = {
        "he said \"hi\"", "back\\slash", "multi\nline", "trailing\\", "r\rreturn",
    };
    TaskGraph graph("quoted \"name\"\\", RegisterFile{});
    for (std::size_t i = 0; i < names.size(); ++i) graph.add_task(names[i], 100 * (i + 1));
    for (std::size_t i = 0; i + 1 < names.size(); ++i)
        graph.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), 10);
    graph.validate();

    const std::string dot = to_dot(graph);
    const ParsedDot parsed = parse_dot(dot, names.size());
    // Structure: balanced braces, one edge line per edge, every node
    // label lexes as a single quoted string and decodes back to the
    // original name (the exporter appends "\n<cycles> cyc").
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
    EXPECT_EQ(parsed.edge_count, graph.edge_count());
    EXPECT_EQ(parsed.graph_name, graph.name());
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string& label = parsed.node_labels[i];
        const std::string suffix = "\n" + std::to_string(100 * (i + 1)) + " cyc";
        ASSERT_GE(label.size(), suffix.size()) << label;
        EXPECT_EQ(label.substr(label.size() - suffix.size()), suffix);
        EXPECT_EQ(label.substr(0, label.size() - suffix.size()), names[i]);
    }
}

TEST(Dot, MappedExportEscapesNamesToo) {
    TaskGraph graph("m", RegisterFile{});
    graph.add_task("needs \"quotes\"", 100);
    graph.add_task("plain", 100);
    graph.add_edge(0, 1, 5);
    graph.validate();
    const std::array<std::uint32_t, 2> cores = {0, 1};
    std::ostringstream os;
    write_dot_mapped(os, graph, cores);
    const ParsedDot parsed = parse_dot(os.str(), 2);
    EXPECT_EQ(parsed.node_labels[0], "needs \"quotes\"\ncore 0");
    EXPECT_EQ(parsed.node_labels[1], "plain\ncore 1");
}

} // namespace
} // namespace seamap
