// Adversarial inputs for the task-graph reader: every malformed
// document must produce a seamap::Error with ErrorCategory::parse and
// a useful message — never undefined behavior, a bad_alloc from a
// hostile declared count, or an unstructured exception leaking out of
// a lower layer.
#include "taskgraph/serialization.h"

#include "util/error.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <typeinfo>

namespace seamap {
namespace {

Error parse_failure(const std::string& text) {
    std::stringstream buffer{text};
    try {
        (void)read_task_graph(buffer);
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::parse) << e.what();
        return e;
    } catch (const std::exception& e) {
        ADD_FAILURE() << "expected seamap::Error, got " << typeid(e).name() << ": "
                      << e.what();
        return Error(ErrorCategory::internal, "wrong exception type");
    }
    ADD_FAILURE() << "expected parse failure, input accepted";
    return Error(ErrorCategory::internal, "input accepted");
}

void expect_message_contains(const Error& error, const std::string& needle) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "what() = " << error.what();
}

const std::string k_valid_prefix = "graph g\nbatches 1\nregisters 1\nreg r0 8\n";

TEST(SerializationNegative, EmptyInput) {
    expect_message_contains(parse_failure(""), "unexpected end of input");
}

TEST(SerializationNegative, TruncatedAfterEveryHeader) {
    // Chop the document after each section header; all must fail cleanly.
    const std::string full = k_valid_prefix + "tasks 1\ntask a 10 1 0\nedges 0\n";
    for (std::size_t cut = 0; cut + 1 < full.size(); ++cut) {
        std::stringstream buffer{full.substr(0, cut)};
        EXPECT_THROW((void)read_task_graph(buffer), Error) << "cut at " << cut;
    }
}

TEST(SerializationNegative, GiantRegisterCountRejectedBeforeLooping) {
    const Error e = parse_failure("graph g\nbatches 1\nregisters 18446744073709551615\n");
    expect_message_contains(e, "register count");
    expect_message_contains(e, "limit");
}

TEST(SerializationNegative, GiantTaskCountRejected) {
    const Error e = parse_failure(k_valid_prefix + "tasks 99999999999\n");
    expect_message_contains(e, "task count");
}

TEST(SerializationNegative, GiantEdgeCountRejected) {
    const Error e =
        parse_failure(k_valid_prefix + "tasks 1\ntask a 10 0\nedges 4000000000\n");
    expect_message_contains(e, "edge count");
}

TEST(SerializationNegative, GiantTaskRegisterListCountDoesNotOverflow) {
    // 4 + 18446744073709551613 would wrap to 1 if computed naively.
    const Error e =
        parse_failure(k_valid_prefix + "tasks 1\ntask a 10 18446744073709551613 0\n");
    expect_message_contains(e, "task register count");
}

TEST(SerializationNegative, NonNumericBatchCount) {
    const Error e = parse_failure("graph g\nbatches soon\n");
    expect_message_contains(e, "line 2");
    expect_message_contains(e, "not an unsigned integer");
}

TEST(SerializationNegative, NonNumericExecCycles) {
    const Error e = parse_failure(k_valid_prefix + "tasks 1\ntask a fast 0\n");
    expect_message_contains(e, "not an unsigned integer");
}

TEST(SerializationNegative, NegativeCountRejected) {
    const Error e = parse_failure("graph g\nbatches -3\n");
    expect_message_contains(e, "not an unsigned integer");
}

TEST(SerializationNegative, ZeroBatchCountRejected) {
    const Error e = parse_failure("graph g\nbatches 0\nregisters 0\n"
                                  "tasks 1\ntask a 10 0\nedges 0\n");
    expect_message_contains(e, "batch count");
}

TEST(SerializationNegative, ZeroExecCyclesRejectedWithLine) {
    const Error e = parse_failure(k_valid_prefix + "tasks 1\ntask a 0 0\nedges 0\n");
    expect_message_contains(e, "line 6");
    expect_message_contains(e, "positive cost");
}

TEST(SerializationNegative, RegisterWidthOverLimitRejected) {
    const Error e =
        parse_failure("graph g\nbatches 1\nregisters 1\nreg r0 9999999999999999\n");
    expect_message_contains(e, "register width");
    expect_message_contains(e, "limit");
}

TEST(SerializationNegative, RegisterIdOutOfRange) {
    const Error e = parse_failure(k_valid_prefix + "tasks 1\ntask a 10 1 7\nedges 0\n");
    expect_message_contains(e, "register id 7 out of range");
}

TEST(SerializationNegative, EdgeEndpointOutOfRange) {
    const Error e = parse_failure(k_valid_prefix +
                                  "tasks 2\ntask a 10 0\ntask b 10 0\n"
                                  "edges 1\nedge 0 5 1\n");
    expect_message_contains(e, "edge endpoint out of range");
}

TEST(SerializationNegative, DuplicateEdgeRejectedWithLine) {
    const Error e = parse_failure(k_valid_prefix +
                                  "tasks 2\ntask a 10 0\ntask b 10 0\n"
                                  "edges 2\nedge 0 1 1\nedge 0 1 2\n");
    expect_message_contains(e, "line 10");
    expect_message_contains(e, "duplicate edge");
}

TEST(SerializationNegative, SelfLoopRejectedWithLine) {
    const Error e = parse_failure(k_valid_prefix +
                                  "tasks 1\ntask a 10 0\nedges 1\nedge 0 0 1\n");
    expect_message_contains(e, "self-loop");
}

TEST(SerializationNegative, WrongFieldCountOnEdge) {
    const Error e =
        parse_failure(k_valid_prefix + "tasks 1\ntask a 10 0\nedges 1\nedge 0 1\n");
    expect_message_contains(e, "'edge' expects 3 fields");
}

TEST(SerializationNegative, EmptyGraphFailsValidation) {
    const Error e = parse_failure("graph g\nbatches 1\nregisters 0\ntasks 0\nedges 0\n");
    expect_message_contains(e, "no tasks");
}

TEST(SerializationNegative, MissingFileIsIoError) {
    try {
        (void)load_task_graph("/nonexistent/definitely/missing.tg");
        FAIL() << "expected io error";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::io);
        EXPECT_EQ(e.context(), "/nonexistent/definitely/missing.tg");
    }
}

} // namespace
} // namespace seamap
