#include "taskgraph/register_file.h"

#include <gtest/gtest.h>

#include <vector>

namespace seamap {
namespace {

TEST(RegisterFile, AddAndQuery) {
    RegisterFile file;
    const RegisterId a = file.add_register("a", 1024);
    const RegisterId b = file.add_register("b", 2048);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(file.size(), 2u);
    EXPECT_EQ(file.bits(a), 1024u);
    EXPECT_EQ(file.name(b), "b");
    EXPECT_EQ(file.total_bits(), 3072u);
    EXPECT_FALSE(file.empty());
}

TEST(RegisterFile, RejectsZeroWidth) {
    RegisterFile file;
    EXPECT_THROW(file.add_register("zero", 0), std::invalid_argument);
}

TEST(RegisterFile, BadIdThrows) {
    RegisterFile file;
    file.add_register("only", 8);
    EXPECT_THROW(file.bits(1), std::out_of_range);
    EXPECT_THROW(file.name(99), std::out_of_range);
}

TEST(RegisterSet, SetTestResetClear) {
    RegisterSet set(100);
    EXPECT_TRUE(set.empty());
    set.set(0);
    set.set(63);
    set.set(64);
    set.set(99);
    EXPECT_TRUE(set.test(0));
    EXPECT_TRUE(set.test(63));
    EXPECT_TRUE(set.test(64));
    EXPECT_TRUE(set.test(99));
    EXPECT_FALSE(set.test(1));
    EXPECT_EQ(set.count(), 4u);
    set.reset(63);
    EXPECT_FALSE(set.test(63));
    EXPECT_EQ(set.count(), 3u);
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.count(), 0u);
}

TEST(RegisterSet, OutOfUniverseThrows) {
    RegisterSet set(10);
    EXPECT_THROW(set.set(10), std::out_of_range);
    EXPECT_THROW(set.test(11), std::out_of_range);
    EXPECT_THROW(set.reset(10), std::out_of_range);
}

TEST(RegisterSet, UnionAndIntersection) {
    RegisterSet a(70), b(70);
    a.set(1);
    a.set(65);
    b.set(65);
    b.set(2);

    RegisterSet u = a | b;
    EXPECT_EQ(u.count(), 3u);
    EXPECT_TRUE(u.test(1));
    EXPECT_TRUE(u.test(2));
    EXPECT_TRUE(u.test(65));

    RegisterSet i = a & b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(65));
}

TEST(RegisterSet, UniverseMismatchThrows) {
    RegisterSet a(10), b(20);
    EXPECT_THROW(a |= b, std::invalid_argument);
    EXPECT_THROW(a &= b, std::invalid_argument);
}

TEST(RegisterSet, WeightedBits) {
    RegisterFile file;
    file.add_register("r0", 100);
    file.add_register("r1", 200);
    file.add_register("r2", 400);
    RegisterSet set(file.size());
    set.set(0);
    set.set(2);
    EXPECT_EQ(set.bits_in(file), 500u);
}

TEST(RegisterSet, BitsInChecksUniverse) {
    RegisterFile file;
    file.add_register("r0", 1);
    RegisterSet set(2);
    EXPECT_THROW(set.bits_in(file), std::invalid_argument);
}

TEST(RegisterSet, ForEachVisitsAscending) {
    RegisterSet set(130);
    set.set(5);
    set.set(64);
    set.set(129);
    std::vector<RegisterId> visited;
    set.for_each([&](RegisterId id) { visited.push_back(id); });
    ASSERT_EQ(visited.size(), 3u);
    EXPECT_EQ(visited[0], 5u);
    EXPECT_EQ(visited[1], 64u);
    EXPECT_EQ(visited[2], 129u);
}

TEST(RegisterSet, EqualityComparable) {
    RegisterSet a(16), b(16);
    a.set(3);
    b.set(3);
    EXPECT_EQ(a, b);
    b.set(4);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace seamap
