// Checks that the MPEG-2 decoder model reproduces every number the
// paper publishes about it: Fig. 2 node/edge costs and the Section III
// register-sharing facts.
#include "taskgraph/mpeg2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

namespace seamap {
namespace {

TEST(Mpeg2, ElevenTasksWithFig2Costs) {
    const TaskGraph graph = mpeg2_decoder_graph();
    ASSERT_EQ(graph.task_count(), 11u);
    const std::array<std::uint64_t, 11> units = {10, 15, 16, 31, 25, 39, 63, 61, 48, 41, 21};
    for (TaskId t = 0; t < 11; ++t)
        EXPECT_EQ(graph.task(t).exec_cycles, units[t] * k_mpeg2_cost_unit) << "task " << t;
}

TEST(Mpeg2, EdgeCostMultisetMatchesFig2) {
    const TaskGraph graph = mpeg2_decoder_graph();
    ASSERT_EQ(graph.edge_count(), 11u);
    std::vector<std::uint64_t> units;
    for (const Edge& e : graph.edges()) units.push_back(e.comm_cycles / k_mpeg2_cost_unit);
    std::sort(units.begin(), units.end());
    const std::vector<std::uint64_t> expected = {1, 2, 2, 2, 2, 3, 3, 4, 4, 4, 4};
    EXPECT_EQ(units, expected);
}

TEST(Mpeg2, IsValidDagWithSingleSourceAndSink) {
    const TaskGraph graph = mpeg2_decoder_graph();
    EXPECT_NO_THROW(graph.validate());
    EXPECT_EQ(graph.source_tasks().size(), 1u);
    EXPECT_EQ(graph.source_tasks().front(), 0u); // decode_header_sequences
    EXPECT_EQ(graph.sink_tasks().size(), 1u);
    EXPECT_EQ(graph.sink_tasks().front(), 10u); // store_display_frame
}

TEST(Mpeg2, BatchCountIsFrameCount) {
    const TaskGraph graph = mpeg2_decoder_graph();
    EXPECT_EQ(graph.batch_count(), 437u);
}

TEST(Mpeg2, DeadlineMatches29_97Fps) {
    EXPECT_NEAR(mpeg2_deadline_seconds(), 437.0 / 29.97, 1e-12);
    EXPECT_NEAR(mpeg2_deadline_seconds(), 14.581, 1e-3);
}

// Section III: "the tasks t5 and t6 share nearly 6.4kb registers".
// (Paper tasks are 1-based; graph ids are 0-based.)
TEST(Mpeg2, T5T6Share6400Bits) {
    const TaskGraph graph = mpeg2_decoder_graph();
    EXPECT_EQ(graph.shared_register_bits(4, 5), 6'400u);
}

// Section III: "the tasks t6, t7 and t8 share about 8kb registers
// among them".
TEST(Mpeg2, T6T7T8Share8000Bits) {
    const TaskGraph graph = mpeg2_decoder_graph();
    RegisterSet triple = graph.task(5).registers;
    triple &= graph.task(6).registers;
    triple &= graph.task(7).registers;
    EXPECT_EQ(triple.bits_in(graph.register_file()), 8'000u);
}

// Section III: mapping {t5,t6} and {t7,t8} on different cores
// "gives a duplication of about 14.4kb registers between the cores".
TEST(Mpeg2, SplittingBlockChainDuplicates14400Bits) {
    const TaskGraph graph = mpeg2_decoder_graph();
    const std::array<TaskId, 2> first = {4, 5};
    const std::array<TaskId, 2> second = {6, 7};
    RegisterSet duplicated = graph.union_register_set(first);
    duplicated &= graph.union_register_set(second);
    EXPECT_EQ(duplicated.bits_in(graph.register_file()), 14'400u);
}

TEST(Mpeg2, SingleCoreRegisterFloorBracketsTableII) {
    // Table II reports 4-core register usage between 80 and 118
    // kbit/cycle; the single-core union is the absolute floor and the
    // all-spread sum the ceiling — the Table II range must lie between.
    const TaskGraph graph = mpeg2_decoder_graph();
    std::vector<TaskId> all(graph.task_count());
    for (TaskId t = 0; t < graph.task_count(); ++t) all[t] = t;
    const double floor_kb = static_cast<double>(graph.union_register_bits(all)) / 1000.0;
    double ceiling_kb = 0.0;
    for (TaskId t = 0; t < graph.task_count(); ++t)
        ceiling_kb += static_cast<double>(graph.task_register_bits(t)) / 1000.0;
    EXPECT_LT(floor_kb, 80.0);
    EXPECT_GT(ceiling_kb, 118.0);
}

TEST(Mpeg2, CriticalPathAllowsRealTimeDecodeAtNominal) {
    // The decode must be feasible on one nominal core: total work at
    // 200 MHz must fit in the 14.58 s budget (the paper's experiments
    // all start from feasible single-chain decodes).
    const TaskGraph graph = mpeg2_decoder_graph();
    const double single_core_seconds =
        static_cast<double>(graph.total_exec_cycles()) / 200e6;
    EXPECT_LT(single_core_seconds, mpeg2_deadline_seconds());
}

} // namespace
} // namespace seamap
