#include "taskgraph/task_graph.h"

#include <gtest/gtest.h>

#include <array>

namespace seamap {
namespace {

/// Diamond: a -> b, a -> c, b -> d, c -> d, with register overlap
/// between b and c.
TaskGraph make_diamond() {
    RegisterFile regs;
    const RegisterId shared = regs.add_register("shared", 1000);
    const RegisterId priv_a = regs.add_register("priv_a", 100);
    const RegisterId priv_d = regs.add_register("priv_d", 200);
    TaskGraph graph("diamond", std::move(regs));
    const TaskId a = graph.add_task("a", 100, std::array{priv_a});
    const TaskId b = graph.add_task("b", 200, std::array{shared});
    const TaskId c = graph.add_task("c", 300, std::array{shared});
    const TaskId d = graph.add_task("d", 400, std::array{priv_d});
    graph.add_edge(a, b, 10);
    graph.add_edge(a, c, 20);
    graph.add_edge(b, d, 30);
    graph.add_edge(c, d, 40);
    return graph;
}

TEST(TaskGraph, BasicAccessors) {
    const TaskGraph graph = make_diamond();
    EXPECT_EQ(graph.name(), "diamond");
    EXPECT_EQ(graph.task_count(), 4u);
    EXPECT_EQ(graph.edge_count(), 4u);
    EXPECT_EQ(graph.task(0).name, "a");
    EXPECT_EQ(graph.task(3).exec_cycles, 400u);
    EXPECT_EQ(graph.batch_count(), 1u);
    EXPECT_NO_THROW(graph.validate());
}

TEST(TaskGraph, RejectsZeroCostTask) {
    RegisterFile regs;
    TaskGraph graph("g", std::move(regs));
    EXPECT_THROW(graph.add_task("zero", 0), std::invalid_argument);
}

TEST(TaskGraph, RejectsSelfLoopAndDuplicateEdge) {
    TaskGraph graph = make_diamond();
    EXPECT_THROW(graph.add_edge(1, 1, 5), std::invalid_argument);
    EXPECT_THROW(graph.add_edge(0, 1, 5), std::invalid_argument); // duplicate a->b
}

TEST(TaskGraph, RejectsBadIds) {
    TaskGraph graph = make_diamond();
    EXPECT_THROW(graph.add_edge(0, 99, 1), std::out_of_range);
    EXPECT_THROW((void)graph.task(99), std::out_of_range);
    EXPECT_THROW((void)graph.edge(99), std::out_of_range);
}

TEST(TaskGraph, BatchCountValidation) {
    TaskGraph graph = make_diamond();
    EXPECT_THROW(graph.set_batch_count(0), std::invalid_argument);
    graph.set_batch_count(437);
    EXPECT_EQ(graph.batch_count(), 437u);
}

TEST(TaskGraph, SuccessorsAndPredecessors) {
    const TaskGraph graph = make_diamond();
    EXPECT_EQ(graph.successors(0), (std::vector<TaskId>{1, 2}));
    EXPECT_EQ(graph.predecessors(3), (std::vector<TaskId>{1, 2}));
    EXPECT_TRUE(graph.predecessors(0).empty());
    EXPECT_TRUE(graph.successors(3).empty());
}

TEST(TaskGraph, SourcesAndSinks) {
    const TaskGraph graph = make_diamond();
    EXPECT_EQ(graph.source_tasks(), (std::vector<TaskId>{0}));
    EXPECT_EQ(graph.sink_tasks(), (std::vector<TaskId>{3}));
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
    const TaskGraph graph = make_diamond();
    const auto order = graph.topological_order();
    ASSERT_EQ(order.size(), 4u);
    std::vector<std::size_t> position(4);
    for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (const Edge& e : graph.edges()) EXPECT_LT(position[e.src], position[e.dst]);
}

TEST(TaskGraph, CycleDetected) {
    RegisterFile regs;
    TaskGraph graph("cyclic", std::move(regs));
    const TaskId a = graph.add_task("a", 1);
    const TaskId b = graph.add_task("b", 1);
    const TaskId c = graph.add_task("c", 1);
    graph.add_edge(a, b, 1);
    graph.add_edge(b, c, 1);
    graph.add_edge(c, a, 1);
    EXPECT_FALSE(graph.is_acyclic());
    EXPECT_THROW(graph.validate(), std::invalid_argument);
    EXPECT_THROW((void)graph.topological_order(), std::invalid_argument);
}

TEST(TaskGraph, EmptyGraphFailsValidation) {
    RegisterFile regs;
    TaskGraph graph("empty", std::move(regs));
    EXPECT_THROW(graph.validate(), std::invalid_argument);
}

TEST(TaskGraph, TotalCosts) {
    const TaskGraph graph = make_diamond();
    EXPECT_EQ(graph.total_exec_cycles(), 1000u);
    EXPECT_EQ(graph.total_comm_cycles(), 100u);
}

TEST(TaskGraph, CriticalPathWithAndWithoutComm) {
    const TaskGraph graph = make_diamond();
    // Without comm: a + c + d = 100 + 300 + 400 = 800.
    EXPECT_EQ(graph.critical_path_cycles(false), 800u);
    // With comm: a +20+ c +40+ d = 860.
    EXPECT_EQ(graph.critical_path_cycles(true), 860u);
}

TEST(TaskGraph, RegisterQueries) {
    const TaskGraph graph = make_diamond();
    EXPECT_EQ(graph.task_register_bits(0), 100u);
    EXPECT_EQ(graph.task_register_bits(1), 1000u);
    EXPECT_EQ(graph.shared_register_bits(1, 2), 1000u); // both use 'shared'
    EXPECT_EQ(graph.shared_register_bits(0, 3), 0u);
    const std::array<TaskId, 2> bc = {1, 2};
    EXPECT_EQ(graph.union_register_bits(bc), 1000u); // shared counted once
    const std::array<TaskId, 4> all = {0, 1, 2, 3};
    EXPECT_EQ(graph.union_register_bits(all), 1300u);
}

TEST(TaskGraph, DuplicateRegisterIdsInTaskIgnored) {
    RegisterFile regs;
    const RegisterId r = regs.add_register("r", 64);
    TaskGraph graph("g", std::move(regs));
    const TaskId t = graph.add_task("t", 1, std::array{r, r, r});
    EXPECT_EQ(graph.task(t).registers.count(), 1u);
    EXPECT_EQ(graph.task_register_bits(t), 64u);
}

TEST(TaskGraph, OutEdgeIndicesMatchEdges) {
    const TaskGraph graph = make_diamond();
    const auto indices = graph.out_edge_indices(0);
    ASSERT_EQ(indices.size(), 2u);
    for (std::size_t idx : indices) EXPECT_EQ(graph.edge(idx).src, 0u);
    const auto in_indices = graph.in_edge_indices(3);
    ASSERT_EQ(in_indices.size(), 2u);
    for (std::size_t idx : in_indices) EXPECT_EQ(graph.edge(idx).dst, 3u);
}

} // namespace
} // namespace seamap
