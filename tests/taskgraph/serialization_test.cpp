#include "taskgraph/serialization.h"

#include "taskgraph/fig8.h"
#include "taskgraph/mpeg2.h"
#include "util/error.h"

#include <gtest/gtest.h>

#include <sstream>

namespace seamap {
namespace {

void expect_graphs_equal(const TaskGraph& a, const TaskGraph& b) {
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.batch_count(), b.batch_count());
    ASSERT_EQ(a.task_count(), b.task_count());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    ASSERT_EQ(a.register_file().size(), b.register_file().size());
    for (RegisterId r = 0; r < a.register_file().size(); ++r) {
        EXPECT_EQ(a.register_file().name(r), b.register_file().name(r));
        EXPECT_EQ(a.register_file().bits(r), b.register_file().bits(r));
    }
    for (TaskId t = 0; t < a.task_count(); ++t) {
        EXPECT_EQ(a.task(t).name, b.task(t).name);
        EXPECT_EQ(a.task(t).exec_cycles, b.task(t).exec_cycles);
        EXPECT_EQ(a.task(t).registers, b.task(t).registers);
    }
    for (std::size_t e = 0; e < a.edge_count(); ++e) {
        EXPECT_EQ(a.edge(e).src, b.edge(e).src);
        EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
        EXPECT_EQ(a.edge(e).comm_cycles, b.edge(e).comm_cycles);
    }
}

TEST(Serialization, RoundTripMpeg2) {
    const TaskGraph original = mpeg2_decoder_graph();
    std::stringstream buffer;
    write_task_graph(buffer, original);
    const TaskGraph reloaded = read_task_graph(buffer);
    expect_graphs_equal(original, reloaded);
}

TEST(Serialization, RoundTripFig8) {
    const TaskGraph original = fig8_example_graph();
    std::stringstream buffer;
    write_task_graph(buffer, original);
    const TaskGraph reloaded = read_task_graph(buffer);
    expect_graphs_equal(original, reloaded);
}

TEST(Serialization, CommentsAndBlankLinesIgnored) {
    std::stringstream buffer;
    buffer << "# a comment\n\n"
           << "graph tiny\n"
           << "batches 2\n"
           << "# registers follow\n"
           << "registers 1\n"
           << "reg r0 32\n"
           << "tasks 2\n"
           << "task a 10 1 0\n"
           << "task b 20 0\n"
           << "edges 1\n"
           << "edge 0 1 5\n";
    const TaskGraph graph = read_task_graph(buffer);
    EXPECT_EQ(graph.name(), "tiny");
    EXPECT_EQ(graph.batch_count(), 2u);
    EXPECT_EQ(graph.task_count(), 2u);
    EXPECT_EQ(graph.task(0).exec_cycles, 10u);
    EXPECT_EQ(graph.edge(0).comm_cycles, 5u);
}

TEST(Serialization, WrongKeywordReportsLine) {
    std::stringstream buffer;
    buffer << "graph g\nbatches 1\nNOT_REGISTERS 0\n";
    try {
        (void)read_task_graph(buffer);
        FAIL() << "expected parse error";
    } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::parse);
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("registers"), std::string::npos);
    }
}

TEST(Serialization, TruncatedInputThrows) {
    std::stringstream buffer;
    buffer << "graph g\nbatches 1\nregisters 1\n"; // register line missing
    EXPECT_THROW((void)read_task_graph(buffer), Error);
}

TEST(Serialization, RegisterListLengthMismatchThrows) {
    std::stringstream buffer;
    buffer << "graph g\nbatches 1\nregisters 1\nreg r0 8\n"
           << "tasks 1\ntask a 10 2 0\n"; // claims 2 registers, lists 1
    EXPECT_THROW((void)read_task_graph(buffer), Error);
}

TEST(Serialization, CyclicInputFailsValidation) {
    std::stringstream buffer;
    buffer << "graph g\nbatches 1\nregisters 0\n"
           << "tasks 2\ntask a 1 0\ntask b 1 0\n"
           << "edges 2\nedge 0 1 1\nedge 1 0 1\n";
    EXPECT_THROW((void)read_task_graph(buffer), Error);
}

TEST(Serialization, FileRoundTrip) {
    const TaskGraph original = fig8_example_graph();
    const std::string path = testing::TempDir() + "/fig8_roundtrip.tg";
    save_task_graph(path, original);
    const TaskGraph reloaded = load_task_graph(path);
    expect_graphs_equal(original, reloaded);
}

TEST(Serialization, MissingFileThrows) {
    EXPECT_THROW((void)load_task_graph("/nonexistent/definitely/missing.tg"),
                 std::runtime_error);
}

} // namespace
} // namespace seamap
