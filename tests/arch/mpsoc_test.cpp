#include "arch/mpsoc.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

TEST(Mpsoc, ConstructionAndAccessors) {
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    EXPECT_EQ(arch.core_count(), 4u);
    EXPECT_EQ(arch.scaling_table().level_count(), 3u);
    EXPECT_DOUBLE_EQ(arch.frequency_hz(1), 200e6);
}

TEST(Mpsoc, RejectsZeroCores) {
    EXPECT_THROW(MpsocArchitecture(0, VoltageScalingTable::arm7_three_level()),
                 std::invalid_argument);
}

TEST(Mpsoc, SlowestAndNominalScalings) {
    const MpsocArchitecture arch(3, VoltageScalingTable::arm7_three_level());
    EXPECT_EQ(arch.slowest_scaling(), (ScalingVector{3, 3, 3}));
    EXPECT_EQ(arch.nominal_scaling(), (ScalingVector{1, 1, 1}));
}

TEST(Mpsoc, ValidateScaling) {
    const MpsocArchitecture arch(2, VoltageScalingTable::arm7_three_level());
    EXPECT_NO_THROW(arch.validate_scaling({1, 3}));
    EXPECT_THROW(arch.validate_scaling({1}), std::invalid_argument);      // wrong size
    EXPECT_THROW(arch.validate_scaling({1, 4}), std::out_of_range);       // bad level
    EXPECT_THROW(arch.validate_scaling({0, 1}), std::out_of_range);       // bad level
}

} // namespace
} // namespace seamap
