#include "arch/power_model.h"

#include <gtest/gtest.h>

#include <array>

namespace seamap {
namespace {

PowerModel make_model(double c_eff = 60e-12, double idle = 0.3) {
    return PowerModel(VoltageScalingTable::arm7_three_level(), PowerParams{c_eff, idle});
}

TEST(PowerModel, CoreActivePowerFollowsEq1) {
    const PowerModel model = make_model(60e-12);
    // P = C_eff * f * V^2 = 60e-12 * 200e6 * 1.0 = 12 mW at nominal.
    EXPECT_NEAR(model.core_active_power_mw(1), 12.0, 1e-9);
    // Level 2: 60e-12 * 100e6 * 0.58^2 = 2.0184 mW.
    EXPECT_NEAR(model.core_active_power_mw(2), 2.0184, 1e-6);
    // Level 3: 60e-12 * 66.7e6 * 0.44^2 = 0.7748 mW.
    EXPECT_NEAR(model.core_active_power_mw(3), 0.774787, 1e-5);
}

TEST(PowerModel, EnergyPerCycleIsActivePowerOverFrequency) {
    const PowerModel model = make_model(60e-12);
    // mW / Hz at nominal: 12 mW / 200e6 Hz; proportional to Vdd^2, so
    // the slower levels are cheaper per cycle (that monotonicity is
    // what the branch-and-bound power bound's knapsack exploits).
    EXPECT_NEAR(model.core_energy_per_cycle_mws(1), 12.0 / 200e6, 1e-18);
    EXPECT_NEAR(model.core_energy_per_cycle_mws(2), 2.0184 / 100e6, 1e-14);
    EXPECT_LT(model.core_energy_per_cycle_mws(3), model.core_energy_per_cycle_mws(2));
    EXPECT_LT(model.core_energy_per_cycle_mws(2), model.core_energy_per_cycle_mws(1));
}

TEST(PowerModel, VoltageScalingSavesSuperlinearly) {
    const PowerModel model = make_model();
    // f*V^2 scaling: level 2 must save more than the 2x frequency cut.
    EXPECT_LT(model.core_active_power_mw(2), model.core_active_power_mw(1) / 2.0);
    EXPECT_LT(model.core_active_power_mw(3), model.core_active_power_mw(2));
}

TEST(PowerModel, MpsocPowerWeightsByUtilization) {
    const PowerModel model = make_model(60e-12, 0.0); // no idle power
    const std::array<ScalingLevel, 2> levels = {1, 1};
    const std::array<double, 2> util = {1.0, 0.5};
    EXPECT_NEAR(model.mpsoc_power_mw(levels, util), 12.0 + 6.0, 1e-9);
}

TEST(PowerModel, IdleActivityAddsClockTreePower) {
    const PowerModel model = make_model(60e-12, 0.3);
    const std::array<ScalingLevel, 1> levels = {1};
    const std::array<double, 1> half = {0.5};
    // 12 mW * (0.5 + 0.3*0.5) = 7.8 mW.
    EXPECT_NEAR(model.mpsoc_power_mw(levels, half), 7.8, 1e-9);
}

TEST(PowerModel, ZeroUtilizationMeansPowerGated) {
    const PowerModel model = make_model(60e-12, 0.3);
    const std::array<ScalingLevel, 2> levels = {1, 1};
    const std::array<double, 2> util = {1.0, 0.0};
    EXPECT_NEAR(model.mpsoc_power_mw(levels, util), 12.0, 1e-9);
}

TEST(PowerModel, SizeMismatchThrows) {
    const PowerModel model = make_model();
    const std::array<ScalingLevel, 2> levels = {1, 1};
    const std::array<double, 1> util = {1.0};
    EXPECT_THROW((void)model.mpsoc_power_mw(levels, util), std::invalid_argument);
}

TEST(PowerModel, UtilizationRangeChecked) {
    const PowerModel model = make_model();
    const std::array<ScalingLevel, 1> levels = {1};
    const std::array<double, 1> negative = {-0.1};
    const std::array<double, 1> too_big = {1.5};
    EXPECT_THROW((void)model.mpsoc_power_mw(levels, negative), std::invalid_argument);
    EXPECT_THROW((void)model.mpsoc_power_mw(levels, too_big), std::invalid_argument);
}

TEST(PowerModel, ParamValidation) {
    EXPECT_THROW(PowerModel(VoltageScalingTable::arm7_three_level(), PowerParams{0.0, 0.3}),
                 std::invalid_argument);
    EXPECT_THROW(PowerModel(VoltageScalingTable::arm7_three_level(), PowerParams{1e-12, -0.1}),
                 std::invalid_argument);
    EXPECT_THROW(PowerModel(VoltageScalingTable::arm7_three_level(), PowerParams{1e-12, 1.1}),
                 std::invalid_argument);
}

} // namespace
} // namespace seamap
