#include "arch/scaling_enumerator.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

namespace seamap {
namespace {

/// The paper's Fig. 5(b): the exact 15-row sequence for 4 cores and 3
/// scaling levels.
TEST(ScalingEnumerator, ReproducesFig5bExactly) {
    const std::vector<ScalingVector> expected = {
        {3, 3, 3, 3}, {3, 3, 3, 2}, {3, 3, 3, 1}, {3, 3, 2, 2}, {3, 3, 2, 1},
        {3, 3, 1, 1}, {3, 2, 2, 2}, {3, 2, 2, 1}, {3, 2, 1, 1}, {3, 1, 1, 1},
        {2, 2, 2, 2}, {2, 2, 2, 1}, {2, 2, 1, 1}, {2, 1, 1, 1}, {1, 1, 1, 1},
    };
    ScalingEnumerator enumerator(4, 3);
    for (std::size_t row = 0; row < expected.size(); ++row) {
        const auto next = enumerator.next();
        ASSERT_TRUE(next.has_value()) << "sequence ended early at row " << row;
        EXPECT_EQ(*next, expected[row]) << "row " << row + 1 << " of Fig. 5(b)";
    }
    EXPECT_FALSE(enumerator.next().has_value());
}

TEST(ScalingEnumerator, FirstIsSlowestLastIsNominal) {
    ScalingEnumerator enumerator(3, 4);
    const auto first = enumerator.next();
    ASSERT_TRUE(first);
    EXPECT_EQ(*first, (ScalingVector{4, 4, 4}));
    ScalingVector last;
    auto current = first;
    while (current) {
        last = *current;
        current = enumerator.next();
    }
    EXPECT_EQ(last, (ScalingVector{1, 1, 1}));
}

TEST(ScalingEnumerator, ResetRestartsSequence) {
    ScalingEnumerator enumerator(2, 2);
    const auto a = enumerator.next();
    enumerator.reset();
    const auto b = enumerator.next();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, *b);
}

TEST(ScalingEnumerator, CombinationCountFormula) {
    // C(C+L-1, L-1).
    EXPECT_EQ(ScalingEnumerator::combination_count(4, 3), 15u); // the paper's number
    EXPECT_EQ(ScalingEnumerator::combination_count(1, 3), 3u);
    EXPECT_EQ(ScalingEnumerator::combination_count(6, 3), 28u);
    EXPECT_EQ(ScalingEnumerator::combination_count(4, 1), 1u);
    EXPECT_EQ(ScalingEnumerator::combination_count(2, 4), 10u);
    EXPECT_EQ(ScalingEnumerator::combination_count(0, 3), 0u);
}

TEST(NextScaling, ValidatesInput) {
    EXPECT_THROW((void)next_scaling({}, 3), std::invalid_argument);
    EXPECT_THROW((void)next_scaling({0, 1}, 3), std::invalid_argument);
    EXPECT_THROW((void)next_scaling({4, 1}, 3), std::invalid_argument);
    EXPECT_THROW((void)next_scaling({1, 2}, 3), std::invalid_argument); // increasing
}

TEST(NextScaling, EndsAfterNominal) {
    EXPECT_FALSE(next_scaling({1, 1, 1}, 3).has_value());
}

TEST(ScalingEnumerator, ConstructionValidation) {
    EXPECT_THROW(ScalingEnumerator(0, 3), std::invalid_argument);
    EXPECT_THROW(ScalingEnumerator(4, 0), std::invalid_argument);
    EXPECT_THROW(ScalingEnumerator(4, 256), std::invalid_argument);
}

/// Property sweep: the sequence has exactly C(C+L-1, L-1) elements, all
/// unique, all non-increasing, for a grid of (cores, levels).
class EnumeratorProperty : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(EnumeratorProperty, SequenceIsCompleteUniqueAndSorted) {
    const auto [cores, levels] = GetParam();
    ScalingEnumerator enumerator(cores, levels);
    std::set<ScalingVector> seen;
    std::uint64_t count = 0;
    while (auto combo = enumerator.next()) {
        ++count;
        EXPECT_EQ(combo->size(), cores);
        for (std::size_t i = 0; i < combo->size(); ++i) {
            EXPECT_GE((*combo)[i], 1);
            EXPECT_LE((*combo)[i], levels);
            if (i > 0) {
                EXPECT_LE((*combo)[i], (*combo)[i - 1]) << "not non-increasing";
            }
        }
        EXPECT_TRUE(seen.insert(*combo).second) << "duplicate combination";
    }
    EXPECT_EQ(count, ScalingEnumerator::combination_count(cores, levels));
}

INSTANTIATE_TEST_SUITE_P(CoreLevelGrid, EnumeratorProperty,
                         testing::Combine(testing::Values<std::size_t>(1, 2, 3, 4, 5, 6),
                                          testing::Values<std::size_t>(1, 2, 3, 4)),
                         [](const testing::TestParamInfo<EnumeratorProperty::ParamType>& param_info) {
                             std::string label; label += "c"; label += std::to_string(std::get<0>(param_info.param)); label += "_l"; label += std::to_string(std::get<1>(param_info.param)); return label;
                         });

} // namespace
} // namespace seamap
