#include "arch/scaling_table.h"

#include <gtest/gtest.h>

namespace seamap {
namespace {

// Eq. (2) must reproduce Table I of the paper.
TEST(VoltageLaw, ReproducesTableI) {
    EXPECT_NEAR(arm7_vdd_for_frequency(200.0), 1.00, 0.001);
    EXPECT_NEAR(arm7_vdd_for_frequency(100.0), 0.58, 0.004);
    EXPECT_NEAR(arm7_vdd_for_frequency(66.7), 0.44, 0.005);
}

TEST(VoltageLaw, RejectsNonPositiveFrequency) {
    EXPECT_THROW(arm7_vdd_for_frequency(0.0), std::invalid_argument);
    EXPECT_THROW(arm7_vdd_for_frequency(-5.0), std::invalid_argument);
}

TEST(ScalingTable, ThreeLevelMatchesTableI) {
    const auto table = VoltageScalingTable::arm7_three_level();
    ASSERT_EQ(table.level_count(), 3u);
    EXPECT_DOUBLE_EQ(table.frequency_mhz(1), 200.0);
    EXPECT_DOUBLE_EQ(table.vdd(1), 1.0);
    EXPECT_DOUBLE_EQ(table.frequency_mhz(2), 100.0);
    EXPECT_DOUBLE_EQ(table.vdd(2), 0.58);
    EXPECT_DOUBLE_EQ(table.frequency_mhz(3), 66.7);
    EXPECT_DOUBLE_EQ(table.vdd(3), 0.44);
    EXPECT_EQ(table.slowest_level(), 3u);
}

TEST(ScalingTable, TwoLevelVariant) {
    const auto table = VoltageScalingTable::arm7_two_level();
    ASSERT_EQ(table.level_count(), 2u);
    EXPECT_DOUBLE_EQ(table.frequency_mhz(2), 100.0);
}

TEST(ScalingTable, FourLevelAddsOverdrive) {
    const auto table = VoltageScalingTable::arm7_four_level();
    ASSERT_EQ(table.level_count(), 4u);
    // Fig. 11: "introducing 1.2V-236MHz" as the new fastest point.
    EXPECT_DOUBLE_EQ(table.frequency_mhz(1), 236.0);
    EXPECT_DOUBLE_EQ(table.vdd(1), 1.2);
    EXPECT_DOUBLE_EQ(table.frequency_mhz(2), 200.0);
    EXPECT_DOUBLE_EQ(table.frequency_mhz(4), 66.7);
}

TEST(ScalingTable, FrequencyHzConversion) {
    const auto table = VoltageScalingTable::arm7_three_level();
    EXPECT_DOUBLE_EQ(table.frequency_hz(1), 200e6);
    EXPECT_DOUBLE_EQ(table.frequency_hz(3), 66.7e6);
}

TEST(ScalingTable, LevelBoundsChecked) {
    const auto table = VoltageScalingTable::arm7_three_level();
    EXPECT_THROW((void)table.at_level(0), std::out_of_range);
    EXPECT_THROW((void)table.at_level(4), std::out_of_range);
}

TEST(ScalingTable, RequiresDecreasingFrequencies) {
    EXPECT_THROW(VoltageScalingTable({{100.0, 0.58}, {200.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(VoltageScalingTable({{100.0, 0.58}, {100.0, 0.58}}), std::invalid_argument);
}

TEST(ScalingTable, RejectsEmptyAndNonPositive) {
    EXPECT_THROW(VoltageScalingTable({}), std::invalid_argument);
    EXPECT_THROW(VoltageScalingTable({{0.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(VoltageScalingTable({{100.0, -1.0}}), std::invalid_argument);
}

TEST(ScalingTable, FromFrequenciesUsesVoltageLaw) {
    const auto table = VoltageScalingTable::from_frequencies({200.0, 150.0, 100.0});
    ASSERT_EQ(table.level_count(), 3u);
    EXPECT_NEAR(table.vdd(1), 1.0, 0.001);
    EXPECT_NEAR(table.vdd(2), 0.1667 + 4.1667 * 0.15, 1e-9);
    EXPECT_NEAR(table.vdd(3), 0.5834, 0.0005);
}

} // namespace
} // namespace seamap
