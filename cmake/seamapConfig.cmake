# CMake package entry point for an installed seamap: resolves the
# Threads dependency the exported target links against, then loads the
# target definitions. Usage:
#     find_package(seamap REQUIRED)
#     target_link_libraries(app PRIVATE seamap::seamap)
include(CMakeFindDependencyMacro)
find_dependency(Threads)
include("${CMAKE_CURRENT_LIST_DIR}/seamapTargets.cmake")
