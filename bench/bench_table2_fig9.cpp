// Reproduces Table II and Fig. 9 of the paper.
//
// Table II: four design optimizations of the MPEG-2 decoder on a
// 4-core MPSoC under the 29.97 fps real-time constraint —
//   Exp:1  SA minimizing register usage R        (soft error-unaware)
//   Exp:2  SA minimizing execution time T_M      (soft error-unaware)
//   Exp:3  SA minimizing the product T_M * R     (soft error-unaware)
//   Exp:4  the proposed two-stage SEU-aware mapping
// each embedded in the same Fig. 4 power-minimization loop (iterative
// voltage scaling, minimum-power feasible design).
//
// Fig. 9: the mappings of Exp:1-3 re-evaluated at Exp:4's chosen
// voltage scaling, reported as percent differences in SEUs experienced
// and power relative to Exp:4. Paper headline: Exp:4 experiences ~38%
// fewer SEUs than Exp:2 at ~9% less power, and ~28% fewer than Exp:1
// at ~7% more power.
#include "bench_common.h"
#include "util/table.h"

#include "taskgraph/mpeg2.h"
#include "util/stats.h"
#include "util/strings.h"

#include <iostream>

using namespace seamap;
using namespace seamap::bench;

int main(int argc, char** argv) {
    BenchBudget budget;
    budget.mapping_iterations = argc > 1 ? parse_u64(argv[1]) : 12'000;
    budget.seed = argc > 2 ? parse_u64(argv[2]) : 1;

    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    // Binding deadline (see EXPERIMENTS.md): our substrate executes the
    // published cycle counts faster than the authors' SystemC platform,
    // so the face-value 14.58 s constraint never binds and every design
    // collapses to the slowest scaling. The normalized deadline lands
    // the DSE in the paper's regime (mixed level-2 scalings). Pass a
    // third argument to override (e.g. 14.58).
    const double deadline =
        argc > 3 ? parse_double(argv[3]) : sweep_deadline_seconds(graph);

    std::cout << "# Table II: MPEG-2 decoder, 4 cores, deadline " << fmt_double(deadline, 2)
              << " s, SER 1e-9 (seed " << budget.seed << ")\n\n";

    const Experiment experiments[] = {
        Experiment::exp1_register_usage, Experiment::exp2_parallelism,
        Experiment::exp3_time_register_product, Experiment::exp4_proposed};
    std::vector<std::optional<ExperimentDesign>> designs;
    TableWriter table2({"Exp.", "mapped tasks (per core)", "scal.", "P (mW)", "R (kb/c)",
                        "T_M (s)", "Gamma"});
    for (const Experiment experiment : experiments) {
        auto design = run_experiment(graph, arch, deadline, experiment, budget);
        if (!design) {
            table2.add_row({experiment_label(experiment), "-", "-", "-", "-", "-", "-"});
            designs.push_back(std::nullopt);
            continue;
        }
        std::string cores_text;
        for (CoreId c = 0; c < arch.core_count(); ++c) {
            if (c > 0) cores_text += " | ";
            cores_text += core_tasks_to_string(graph, design->mapping, c);
        }
        table2.add_row({experiment_label(experiment), cores_text,
                        levels_to_string(design->levels),
                        fmt_double(design->metrics.power_mw, 2),
                        fmt_double(static_cast<double>(design->metrics.register_bits) / 1000.0,
                                   0),
                        fmt_double(design->metrics.tm_seconds, 2),
                        fmt_sci(design->metrics.gamma, 3)});
        designs.push_back(std::move(design));
    }
    table2.print_text(std::cout);

    if (!designs[3]) {
        std::cerr << "Exp:4 found no feasible design; cannot produce Fig. 9\n";
        return 1;
    }

    // ---- Fig. 9: all four mappings at Exp:4's chosen scaling -----------
    const ScalingVector& fixed = designs[3]->levels;
    const EvaluationContext ctx{graph, arch, fixed, SeuEstimator{SerModel{}}, deadline};
    const DesignMetrics exp4 = evaluate_design(ctx, designs[3]->mapping);

    std::cout << "\n# Fig. 9: Exp:1-3 vs Exp:4 at fixed scaling (" << levels_to_string(fixed)
              << ")\n";
    TableWriter fig9({"vs Exp:4", "comparative SEUs", "comparative power"});
    const char* labels[] = {"Exp:1", "Exp:2", "Exp:3"};
    double gamma_delta[3] = {0, 0, 0};
    for (std::size_t i = 0; i < 3; ++i) {
        if (!designs[i]) {
            fig9.add_row({labels[i], "-", "-"});
            continue;
        }
        const DesignMetrics at_fixed = evaluate_design(ctx, designs[i]->mapping);
        gamma_delta[i] = percent_change(at_fixed.gamma, exp4.gamma);
        fig9.add_row({labels[i], fmt_percent(gamma_delta[i], 1),
                      fmt_percent(percent_change(at_fixed.power_mw, exp4.power_mw), 1)});
    }
    fig9.print_text(std::cout);

    std::cout << "\n# ---- paper-vs-measured shape summary ----\n";
    std::cout << "# paper: Exp:1 lowest R; Exp:2 lowest T_M / highest R & Gamma; "
                 "Exp:4 Gamma below Exp:2 and Exp:3\n";
    if (designs[0] && designs[1] && designs[2]) {
        const bool exp1_min_r =
            designs[0]->metrics.register_bits <= designs[1]->metrics.register_bits &&
            designs[0]->metrics.register_bits <= designs[2]->metrics.register_bits;
        const bool exp2_min_tm =
            designs[1]->metrics.tm_seconds <= designs[0]->metrics.tm_seconds &&
            designs[1]->metrics.tm_seconds <= designs[2]->metrics.tm_seconds;
        std::cout << "# measured: Exp:1 min R: " << (exp1_min_r ? "yes" : "NO")
                  << " | Exp:2 min T_M: " << (exp2_min_tm ? "yes" : "NO")
                  << " | Fig 9 Gamma deltas (+ = worse than Exp:4): Exp1 "
                  << fmt_percent(gamma_delta[0], 1) << ", Exp2 "
                  << fmt_percent(gamma_delta[1], 1) << ", Exp3 "
                  << fmt_percent(gamma_delta[2], 1) << '\n';
        std::cout << "# paper Fig 9 reference: Exp2 ~ +61% (Exp:4 38% lower), Exp1 ~ +39% "
                     "(Exp:4 28% lower)\n";
    }
    return 0;
}
