// Reproduces Fig. 11 of the paper: the impact of the number of voltage
// scaling levels (2, 3, 4 — Table I variants) on the power and SEUs of
// the proposed optimization, on a 6-core MPSoC with the 60-task random
// graph.
//
// Paper headline: 4 levels buy ~4% more power saving for ~3% more SEUs
// vs 3 levels; 2 levels give ~42% fewer SEUs at ~28% higher power
// (coarse scaling cannot descend as deep, so voltages — and SER — stay
// high).
#include "bench_common.h"
#include "util/table.h"

#include "tgff/random_graph.h"
#include "util/stats.h"
#include "util/strings.h"

#include <iostream>

using namespace seamap;
using namespace seamap::bench;

int main(int argc, char** argv) {
    BenchBudget budget;
    budget.mapping_iterations = argc > 1 ? parse_u64(argv[1]) : 4'000;
    budget.seed = argc > 2 ? parse_u64(argv[2]) : 7;

    TgffParams params;
    params.task_count = 60;
    const TaskGraph graph = generate_tgff_graph(params, budget.seed);
    const double deadline = sweep_deadline_seconds(graph);

    struct LevelChoice {
        const char* name;
        VoltageScalingTable table;
    };
    const LevelChoice choices[] = {
        {"2 levels", VoltageScalingTable::arm7_two_level()},
        {"3 levels", VoltageScalingTable::arm7_three_level()},
        {"4 levels", VoltageScalingTable::arm7_four_level()},
    };

    std::cout << "# Fig. 11: scaling-level ablation, 6 cores, 60-task graph, deadline "
              << fmt_double(deadline, 2) << " s (seed " << budget.seed << ")\n\n";
    TableWriter table({"levels", "P (mW)", "Gamma", "chosen scaling"});
    double p[3] = {0, 0, 0};
    double g[3] = {0, 0, 0};
    for (std::size_t i = 0; i < 3; ++i) {
        const MpsocArchitecture arch(6, choices[i].table);
        const auto design =
            run_experiment(graph, arch, deadline, Experiment::exp4_proposed, budget);
        if (!design) {
            table.add_row({choices[i].name, "-", "-", "-"});
            continue;
        }
        p[i] = design->metrics.power_mw;
        g[i] = design->metrics.gamma;
        table.add_row({choices[i].name, fmt_double(p[i], 2), fmt_sci(g[i], 3),
                       levels_to_string(design->levels)});
    }
    table.print_text(std::cout);

    std::cout << "\n# ---- paper-vs-measured shape summary ----\n";
    if (p[0] > 0 && p[1] > 0 && p[2] > 0) {
        std::cout << "# paper: 2 levels vs 3: ~+28% power, ~-42% SEUs | measured: "
                  << fmt_percent(percent_change(p[0], p[1]), 1) << " power, "
                  << fmt_percent(percent_change(g[0], g[1]), 1) << " SEUs\n";
        std::cout << "# paper: 4 levels vs 3: ~-4% power, ~+3% SEUs  | measured: "
                  << fmt_percent(percent_change(p[2], p[1]), 1) << " power, "
                  << fmt_percent(percent_change(g[2], g[1]), 1) << " SEUs\n";
    }
    return 0;
}
