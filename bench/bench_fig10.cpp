// Reproduces Fig. 10 of the paper: power and SEUs experienced of the
// designs produced by Exp:3 (soft error-unaware SA on T_M * R) and
// Exp:4 (proposed) across architecture allocations of 2..6 cores, on
// the 60-task random graph.
//
// Paper headline: the proposed optimization consistently experiences
// fewer SEUs (up to ~7% at 6 cores) at a small power premium (~3%).
#include "bench_common.h"
#include "util/table.h"

#include "tgff/random_graph.h"
#include "util/stats.h"
#include "util/strings.h"

#include <iostream>

using namespace seamap;
using namespace seamap::bench;

int main(int argc, char** argv) {
    BenchBudget budget;
    budget.mapping_iterations = argc > 1 ? parse_u64(argv[1]) : 10'000;
    budget.seed = argc > 2 ? parse_u64(argv[2]) : 7;

    TgffParams params;
    params.task_count = 60;
    const TaskGraph graph = generate_tgff_graph(params, budget.seed);
    const double deadline = sweep_deadline_seconds(graph);

    std::cout << "# Fig. 10: Exp:3 vs Exp:4 on the 60-task random graph, deadline "
              << fmt_double(deadline, 2) << " s (seed " << budget.seed << ")\n\n";
    TableWriter table({"cores", "Exp:4 P (mW)", "Exp:3 P (mW)", "Exp:4 Gamma", "Exp:3 Gamma",
                       "Gamma delta", "P delta"});
    RunningStats gamma_saving;
    for (std::size_t cores = 2; cores <= 6; ++cores) {
        const MpsocArchitecture arch(cores, VoltageScalingTable::arm7_three_level());
        const auto exp4 =
            run_experiment(graph, arch, deadline, Experiment::exp4_proposed, budget);
        const auto exp3 = run_experiment(graph, arch, deadline,
                                         Experiment::exp3_time_register_product, budget);
        if (!exp4 || !exp3) {
            table.add_row({std::to_string(cores), "-", "-", "-", "-", "-", "-"});
            continue;
        }
        const double gamma_delta =
            percent_change(exp4->metrics.gamma, exp3->metrics.gamma);
        const double power_delta =
            percent_change(exp4->metrics.power_mw, exp3->metrics.power_mw);
        gamma_saving.add(gamma_delta);
        table.add_row({std::to_string(cores), fmt_double(exp4->metrics.power_mw, 2),
                       fmt_double(exp3->metrics.power_mw, 2),
                       fmt_sci(exp4->metrics.gamma, 3), fmt_sci(exp3->metrics.gamma, 3),
                       fmt_percent(gamma_delta, 1), fmt_percent(power_delta, 1)});
    }
    table.print_text(std::cout);
    std::cout << "\n# ---- paper-vs-measured shape summary ----\n";
    std::cout << "# paper: Exp:4 consistently below Exp:3 on Gamma (up to -7%), within ~+3% "
                 "power\n";
    std::cout << "# measured: mean Gamma delta " << fmt_percent(gamma_saving.mean(), 1)
              << " (negative = proposed wins), worst " << fmt_percent(gamma_saving.max(), 1)
              << ", best " << fmt_percent(gamma_saving.min(), 1) << '\n';
    return 0;
}
