// Ablation: does stage 1 (InitialSEAMapping, Fig. 6) earn its keep?
// Runs the stage-2 search from (a) the greedy SEU-aware construction
// and (b) a blind round-robin start, at equal total search budgets,
// and compares the Gamma of the best feasible design found. Swept over
// workloads and budgets.
#include "bench_common.h"
#include "core/initial_mapping.h"
#include "util/table.h"

#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"
#include "util/stats.h"
#include "util/strings.h"

#include <iostream>

using namespace seamap;
using namespace seamap::bench;

namespace {

struct Outcome {
    bool feasible = false;
    double gamma = 0.0;
};

Outcome search_from(const EvaluationContext& ctx, bool use_greedy, std::uint64_t iterations,
                    std::uint64_t seed) {
    LocalSearchParams params;
    params.max_iterations = iterations;
    params.seed = seed;
    const Mapping start = use_greedy
                              ? initial_sea_mapping(ctx)
                              : round_robin_mapping(ctx.graph, ctx.arch.core_count());
    const LocalSearchResult result = OptimizedMapping(params).optimize(ctx, start);
    return {result.found_feasible, result.best_metrics.gamma};
}

} // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? parse_u64(argv[1]) : 3;

    std::vector<std::pair<std::string, TaskGraph>> apps;
    apps.emplace_back("MPEG-2/4c", mpeg2_decoder_graph());
    for (const std::size_t n : {20u, 60u}) {
        TgffParams params;
        params.task_count = n;
        apps.emplace_back(std::to_string(n) + " tasks/4c",
                          generate_tgff_graph(params, seed));
    }

    std::cout << "# Ablation: greedy stage-1 seed vs round-robin seed for the Fig. 7 search\n\n";
    TableWriter table({"workload", "budget", "Gamma (greedy seed)", "Gamma (rr seed)",
                       "greedy advantage"});
    RunningStats advantage;
    for (const auto& [name, graph] : apps) {
        const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
        const ScalingVector levels(4, 2);
        // Deadline with fixed headroom over this scaling's lower bound,
        // so every workload has a feasible region to search.
        const double deadline = 1.3 * tm_lower_bound_seconds(graph, arch, levels);
        const EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}}, deadline};
        for (const std::uint64_t budget : {250ULL, 1'000ULL, 4'000ULL}) {
            const Outcome greedy = search_from(ctx, true, budget, seed);
            const Outcome blind = search_from(ctx, false, budget, seed);
            std::string delta = "-";
            if (greedy.feasible && blind.feasible) {
                const double percent = percent_change(greedy.gamma, blind.gamma);
                advantage.add(percent);
                delta = fmt_percent(percent, 1);
            }
            table.add_row({name, std::to_string(budget),
                           greedy.feasible ? fmt_sci(greedy.gamma, 3) : "infeasible",
                           blind.feasible ? fmt_sci(blind.gamma, 3) : "infeasible", delta});
        }
    }
    table.print_text(std::cout);
    std::cout << "\n# negative advantage = greedy seed reaches lower Gamma at equal budget\n";
    std::cout << "# mean advantage: " << fmt_percent(advantage.mean(), 1) << " over "
              << advantage.count() << " configurations\n";
    return 0;
}
