// Ablation: execution-time models. The optimizer gates feasibility on
// the exact pipelined list-schedule T_M; the paper's eq. (6) offers a
// cheap closed-form estimate. This bench quantifies how the estimate
// tracks the exact value over mapping populations (error statistics)
// and whether gating the DSE on eq. (6) would change chosen designs.
#include "bench_common.h"
#include "util/table.h"

#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

#include <iostream>

using namespace seamap;
using namespace seamap::bench;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? parse_u64(argv[1]) : 11;
    const std::size_t samples = argc > 2 ? parse_u64(argv[2]) : 200;

    std::vector<std::pair<std::string, TaskGraph>> apps;
    apps.emplace_back("MPEG-2", mpeg2_decoder_graph());
    for (const std::size_t n : {20u, 60u}) {
        TgffParams params;
        params.task_count = n;
        apps.emplace_back(std::to_string(n) + " tasks", generate_tgff_graph(params, seed));
    }

    std::cout << "# Ablation: eq. (6) T_M estimate vs exact pipelined list schedule ("
              << samples << " random mappings per workload)\n\n";
    TableWriter table({"workload", "levels", "mean rel. error", "max rel. error",
                       "rank agreement"});
    Rng rng(seed);
    for (const auto& [name, graph] : apps) {
        const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
        for (const ScalingLevel level : {ScalingLevel{1}, ScalingLevel{2}}) {
            const ScalingVector levels(4, level);
            RunningStats error;
            std::vector<double> exact_values, estimate_values;
            for (std::size_t i = 0; i < samples; ++i) {
                Mapping mapping(graph.task_count(), 4);
                for (TaskId t = 0; t < graph.task_count(); ++t)
                    mapping.assign(t, static_cast<CoreId>(rng.uniform_int(0, 3)));
                const Schedule schedule =
                    ListScheduler{}.schedule(graph, mapping, arch, levels);
                const double exact = schedule.total_time_seconds;
                const double estimate = tm_estimate_eq6_seconds(graph, mapping, arch, levels);
                error.add(std::abs(estimate - exact) / exact);
                exact_values.push_back(exact);
                estimate_values.push_back(estimate);
            }
            // Rank agreement: how often does eq. (6) order random pairs
            // the same way as the exact model?
            std::size_t agree = 0, total = 0;
            for (std::size_t i = 0; i + 1 < exact_values.size(); i += 2) {
                const bool exact_less = exact_values[i] < exact_values[i + 1];
                const bool estimate_less = estimate_values[i] < estimate_values[i + 1];
                agree += exact_less == estimate_less;
                ++total;
            }
            table.add_row({name, levels_to_string(levels),
                           fmt_percent(100.0 * error.mean(), 1),
                           fmt_percent(100.0 * error.max(), 1),
                           fmt_double(100.0 * static_cast<double>(agree) /
                                          static_cast<double>(total),
                                      0) +
                               "%"});
        }
    }
    table.print_text(std::cout);
    std::cout << "\n# eq. (6) assumes perfect load balance across used cores; the rank\n"
                 "# agreement column shows whether it is still a usable search proxy.\n";
    return 0;
}
