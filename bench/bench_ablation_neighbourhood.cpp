// Ablation: the stage-2 neighbourhood. Compares three search variants
// at equal budgets on the MPEG-2 decoder and a 60-task graph:
//   move-only    (swap_probability = 0, sweeps off)
//   move+swap    (swap_probability = 0.3, sweeps off)
//   move+swap+sweep (the default: periodic exhaustive single-move pass)
#include "bench_common.h"
#include "core/initial_mapping.h"
#include "util/table.h"

#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"
#include "util/strings.h"

#include <iostream>

using namespace seamap;
using namespace seamap::bench;

namespace {

double run_variant(const EvaluationContext& ctx, double swap_probability,
                   std::uint64_t sweep_interval, std::uint64_t iterations,
                   std::uint64_t seed) {
    LocalSearchParams params;
    params.max_iterations = iterations;
    params.swap_probability = swap_probability;
    params.sweep_interval = sweep_interval;
    params.seed = seed;
    const LocalSearchResult result =
        OptimizedMapping(params).optimize(ctx, initial_sea_mapping(ctx));
    return result.found_feasible ? result.best_metrics.gamma : -1.0;
}

} // namespace

int main(int argc, char** argv) {
    const std::uint64_t iterations = argc > 1 ? parse_u64(argv[1]) : 3'000;
    const std::uint64_t seed = argc > 2 ? parse_u64(argv[2]) : 5;

    std::vector<std::pair<std::string, TaskGraph>> apps;
    apps.emplace_back("MPEG-2", mpeg2_decoder_graph());
    TgffParams params;
    params.task_count = 60;
    apps.emplace_back("60 tasks", generate_tgff_graph(params, seed));

    std::cout << "# Ablation: OptimizedMapping neighbourhood variants, " << iterations
              << " iterations each\n\n";
    TableWriter table({"workload", "move-only", "move+swap", "move+swap+sweep"});
    for (const auto& [name, graph] : apps) {
        const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
        const ScalingVector levels(4, 2);
        // Deadline with fixed headroom over this scaling's lower bound,
        // so every workload has a feasible region to search.
        const double deadline = 1.3 * tm_lower_bound_seconds(graph, arch, levels);
        const EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}}, deadline};
        auto cell = [&](double gamma) {
            return gamma < 0 ? std::string("infeasible") : fmt_sci(gamma, 4);
        };
        table.add_row({name, cell(run_variant(ctx, 0.0, 0, iterations, seed)),
                       cell(run_variant(ctx, 0.3, 0, iterations, seed)),
                       cell(run_variant(ctx, 0.3, 25, iterations, seed))});
    }
    table.print_text(std::cout);
    std::cout << "\n# lower Gamma is better; the full neighbourhood should dominate\n";
    return 0;
}
