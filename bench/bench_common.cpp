#include "bench_common.h"
#include "core/initial_mapping.h"
#include "core/optimized_mapping.h"

#include "util/rng.h"

namespace seamap::bench {

std::optional<ExperimentDesign> optimize_at_scaling(const EvaluationContext& ctx,
                                                    Experiment experiment,
                                                    const BenchBudget& budget) {
    if (experiment == Experiment::exp4_proposed) {
        LocalSearchParams params;
        params.max_iterations = budget.mapping_iterations;
        params.require_all_cores = true; // paper designs populate every core
        params.seed = budget.seed;
        const LocalSearchResult result =
            OptimizedMapping(params).optimize(ctx, initial_sea_mapping(ctx));
        if (!result.found_feasible) return std::nullopt;
        return ExperimentDesign{ctx.levels, result.best_mapping, result.best_metrics};
    }
    MappingObjective objective = MappingObjective::register_usage;
    if (experiment == Experiment::exp2_parallelism) objective = MappingObjective::makespan;
    if (experiment == Experiment::exp3_time_register_product)
        objective = MappingObjective::time_register_product;
    SaParams params;
    params.iterations = budget.mapping_iterations;
    params.require_all_cores = true; // paper designs populate every core
    params.seed = budget.seed;
    const SaResult result = SimulatedAnnealingMapper(params).optimize(
        ctx, objective, round_robin_mapping(ctx.graph, ctx.arch.core_count()));
    if (!result.found_feasible) return std::nullopt;
    return ExperimentDesign{ctx.levels, result.best_mapping, result.best_metrics};
}

std::optional<ExperimentDesign> run_experiment(const TaskGraph& graph,
                                               const MpsocArchitecture& arch,
                                               double deadline_seconds, Experiment experiment,
                                               const BenchBudget& budget) {
    std::optional<ExperimentDesign> best;
    ScalingEnumerator enumerator(arch.core_count(), arch.scaling_table().level_count());
    while (auto levels = enumerator.next()) {
        if (tm_lower_bound_seconds(graph, arch, *levels) >
            deadline_seconds * (1.0 + 1e-9))
            continue;
        EvaluationContext ctx{graph, arch, *levels, SeuEstimator{SerModel{}},
                              deadline_seconds};
        // Decorrelate the per-scaling searches.
        BenchBudget scaled = budget;
        std::uint64_t hash = 0x9e3779b97f4a7c15ULL;
        for (ScalingLevel level : *levels) hash = splitmix64(hash ^ level);
        scaled.seed = splitmix64(budget.seed ^ hash);
        const auto design = optimize_at_scaling(ctx, experiment, scaled);
        if (!design) continue;
        const bool better =
            !best || design->metrics.power_mw < best->metrics.power_mw * (1.0 - 5e-3) ||
            (design->metrics.power_mw <= best->metrics.power_mw * (1.0 + 5e-3) &&
             design->metrics.gamma < best->metrics.gamma);
        if (better) best = design;
    }
    return best;
}

double sweep_deadline_seconds(const TaskGraph& graph) {
    // 1.3x the mapping-independent two-core nominal-speed lower bound
    // (work split and dependency critical path, batch-aware). Tight
    // enough that two cores must run near nominal voltage, loose enough
    // that a two-core design exists even for chain-dominated graphs.
    const MpsocArchitecture two_cores(2, VoltageScalingTable::arm7_three_level());
    return 1.3 * tm_lower_bound_seconds(graph, two_cores, {1, 1});
}

std::string levels_to_string(const ScalingVector& levels) {
    std::string out;
    for (ScalingLevel level : levels) {
        if (!out.empty()) out += ",";
        out += std::to_string(level);
    }
    return out;
}

std::string core_tasks_to_string(const TaskGraph& graph, const Mapping& mapping, CoreId core) {
    std::string out;
    for (TaskId t = 0; t < graph.task_count(); ++t) {
        if (mapping.core_of(t) != core) continue;
        if (!out.empty()) out += " ";
        out += "t";
        out += std::to_string(t + 1);
    }
    return out.empty() ? "-" : out;
}

} // namespace seamap::bench
