// Reproduces Table I and Fig. 5(b) of the paper: the ARM7TDMI voltage
// scaling table, and the nextScaling enumeration of all unique voltage
// scaling combinations for four cores and three levels (15 rows
// instead of 3^4 = 81), plus the combination-count scaling for other
// architectures.
#include "bench_common.h"
#include "util/table.h"

#include "arch/scaling_enumerator.h"
#include "arch/scaling_table.h"
#include "util/table.h"

#include <iostream>

using namespace seamap;

int main() {
    // ---- Table I -------------------------------------------------------
    std::cout << "# Table I: ARM7TDMI operating points (eq. 2)\n";
    const auto table = VoltageScalingTable::arm7_three_level();
    TableWriter table1({"scaling s", "f (MHz)", "Vdd (V)", "Vdd from eq.(2)"});
    for (ScalingLevel level = 1; level <= table.level_count(); ++level)
        table1.add_row({std::to_string(level), fmt_double(table.frequency_mhz(level), 1),
                        fmt_double(table.vdd(level), 2),
                        fmt_double(arm7_vdd_for_frequency(table.frequency_mhz(level)), 3)});
    table1.print_text(std::cout);

    // ---- Fig. 5(b) -----------------------------------------------------
    std::cout << "\n# Fig. 5(b): nextScaling sequence for 4 cores x 3 levels\n";
    TableWriter fig5b({"iter", "s1", "s2", "s3", "s4"});
    ScalingEnumerator enumerator(4, 3);
    std::size_t row = 0;
    while (auto levels = enumerator.next()) {
        ++row;
        fig5b.add_row({std::to_string(row), std::to_string((*levels)[0]),
                       std::to_string((*levels)[1]), std::to_string((*levels)[2]),
                       std::to_string((*levels)[3])});
    }
    fig5b.print_text(std::cout);
    std::cout << "# paper: 15 unique combinations vs 3^4 = 81 exhaustive | measured: " << row
              << '\n';

    // ---- enumeration savings across architectures ----------------------
    std::cout << "\n# combination counts C(C+L-1, L-1) vs exhaustive L^C\n";
    TableWriter savings({"cores", "levels", "nextScaling", "exhaustive"});
    for (const std::size_t cores : {2u, 4u, 6u, 8u}) {
        for (const std::size_t levels : {2u, 3u, 4u}) {
            std::uint64_t exhaustive = 1;
            for (std::size_t i = 0; i < cores; ++i) exhaustive *= levels;
            savings.add_row({std::to_string(cores), std::to_string(levels),
                             std::to_string(
                                 ScalingEnumerator::combination_count(cores, levels)),
                             std::to_string(exhaustive)});
        }
    }
    savings.print_text(std::cout);
    return 0;
}
