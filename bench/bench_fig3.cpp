// Reproduces Fig. 3 of the paper: the impact of task mapping and
// voltage scaling on reliability, measured over a population of
// mappings of the MPEG-2 decoder on four cores.
//
//   (a) trade-off between multiprocessor execution time T_M and total
//       register usage R (all cores at scaling 1);
//   (b) SEUs experienced Gamma vs T_M at scaling 1 — elevated at both
//       extremes of the mapping spectrum, minimized in between;
//   (c) the same mappings with every core at scaling 2: T_M doubles
//       and Gamma grows ~2.5x (Observation 3).
//
// The paper samples 120 mappings; we sample the same number by default
// (seeded), spanning the localize<->distribute spectrum, plus the two
// extremes. Output: one CSV block per panel, then the shape summary.
#include "bench_common.h"
#include "util/table.h"

#include "reliability/design_eval.h"
#include "sched/mapping.h"
#include "taskgraph/mpeg2.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

#include <algorithm>
#include <iostream>

using namespace seamap;

namespace {

/// Sample a mapping with a controlled degree of spreading: each task
/// joins the previous task's core with probability `cohesion`,
/// otherwise a random core. cohesion 1 -> fully localized, 0 -> random
/// spread; sweeping it covers the T_M/R spectrum like the paper's 120
/// hand mappings.
Mapping sample_mapping(const TaskGraph& graph, std::size_t cores, double cohesion, Rng& rng) {
    Mapping mapping(graph.task_count(), cores);
    const auto order = graph.topological_order();
    CoreId previous = 0;
    for (TaskId t : order) {
        CoreId core = previous;
        if (rng.uniform() >= cohesion)
            core = static_cast<CoreId>(
                rng.uniform_int(0, static_cast<std::int64_t>(cores) - 1));
        mapping.assign(t, core);
        previous = core;
    }
    return mapping;
}

struct Sample {
    double tm_seconds = 0.0;
    double register_kbits = 0.0;
    double gamma = 0.0;
};

} // namespace

int main(int argc, char** argv) {
    const std::size_t mapping_count = argc > 1 ? parse_u64(argv[1]) : 120;
    const std::uint64_t seed = argc > 2 ? parse_u64(argv[2]) : 1;

    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    Rng rng(seed);

    // The mapping population: sweep cohesion plus the two extremes.
    std::vector<Mapping> mappings;
    mappings.push_back(single_core_mapping(graph, 4));
    mappings.push_back(round_robin_mapping(graph, 4));
    while (mappings.size() < mapping_count) {
        const double cohesion = rng.uniform();
        mappings.push_back(sample_mapping(graph, 4, cohesion, rng));
    }

    auto evaluate_all = [&](ScalingLevel level) {
        std::vector<Sample> samples;
        const ScalingVector levels(4, level);
        const EvaluationContext ctx{graph, arch, levels, SeuEstimator{SerModel{}},
                                    mpeg2_deadline_seconds()};
        for (const Mapping& mapping : mappings) {
            const DesignMetrics metrics = evaluate_design(ctx, mapping);
            samples.push_back({metrics.tm_seconds,
                               static_cast<double>(metrics.register_bits) / 1000.0,
                               metrics.gamma});
        }
        return samples;
    };
    const std::vector<Sample> s1 = evaluate_all(1);
    const std::vector<Sample> s2 = evaluate_all(2);

    std::cout << "# Fig. 3 reproduction: " << mappings.size()
              << " mappings of the MPEG-2 decoder on 4 cores (seed " << seed << ")\n";
    std::cout << "\n# (a) T_M vs R, all cores at scaling 1\n";
    std::cout << "tm_seconds,register_kbits\n";
    for (const Sample& s : s1) std::cout << s.tm_seconds << ',' << s.register_kbits << '\n';
    std::cout << "\n# (b) Gamma vs T_M, all cores at scaling 1\n";
    std::cout << "tm_seconds,gamma\n";
    for (const Sample& s : s1) std::cout << s.tm_seconds << ',' << s.gamma << '\n';
    std::cout << "\n# (c) Gamma vs T_M, all cores at scaling 2\n";
    std::cout << "tm_seconds,gamma\n";
    for (const Sample& s : s2) std::cout << s.tm_seconds << ',' << s.gamma << '\n';

    // ---- shape summary -------------------------------------------------
    // Observation 1: R falls as T_M grows (localization shares registers).
    RunningStats tm_stats, r_stats;
    double covariance_acc = 0.0;
    for (const Sample& s : s1) {
        tm_stats.add(s.tm_seconds);
        r_stats.add(s.register_kbits);
    }
    for (const Sample& s : s1)
        covariance_acc +=
            (s.tm_seconds - tm_stats.mean()) * (s.register_kbits - r_stats.mean());
    const double correlation =
        covariance_acc / (static_cast<double>(s1.size()) * tm_stats.stdev() * r_stats.stdev());

    // Observation 2: min-Gamma mapping sits strictly inside the T_M range.
    const auto min_gamma =
        std::min_element(s1.begin(), s1.end(),
                         [](const Sample& a, const Sample& b) { return a.gamma < b.gamma; });
    const auto by_tm = std::minmax_element(
        s1.begin(), s1.end(),
        [](const Sample& a, const Sample& b) { return a.tm_seconds < b.tm_seconds; });

    // Observation 3: scaling 1 -> 2 doubles T_M and multiplies Gamma 2.5x.
    RunningStats tm_ratio, gamma_ratio;
    for (std::size_t i = 0; i < s1.size(); ++i) {
        tm_ratio.add(s2[i].tm_seconds / s1[i].tm_seconds);
        gamma_ratio.add(s2[i].gamma / s1[i].gamma);
    }

    std::cout << "\n# ---- paper-vs-measured shape summary ----\n";
    std::cout << "# Obs 1 (Fig 3a)  paper: R falls as T_M grows   | measured corr(T_M, R) = "
              << fmt_double(correlation, 3) << " (expect < 0)\n";
    std::cout << "# Obs 2 (Fig 3b)  paper: min Gamma mid-spectrum | measured min-Gamma T_M = "
              << fmt_double(min_gamma->tm_seconds, 2) << " s inside ("
              << fmt_double(by_tm.first->tm_seconds, 2) << ", "
              << fmt_double(by_tm.second->tm_seconds, 2) << ") s, at neither extreme: "
              << (min_gamma->tm_seconds > by_tm.first->tm_seconds &&
                          min_gamma->tm_seconds < by_tm.second->tm_seconds
                      ? "yes"
                      : "NO")
              << '\n';
    std::cout << "# Obs 3 (Fig 3c)  paper: T_M x2.0, Gamma x2.5   | measured T_M x"
              << fmt_double(tm_ratio.mean(), 3) << ", Gamma x"
              << fmt_double(gamma_ratio.mean(), 3) << '\n';
    return 0;
}
