// Shared plumbing for the paper-experiment benches: per-objective
// design-space exploration (the paper's Exp:1-3 baselines use the same
// Fig. 4 power-minimization loop as the proposed Exp:4, differing only
// in the mapping engine/objective), deadline normalization, and small
// formatting helpers.
#pragma once

#include "arch/mpsoc.h"
#include "arch/scaling_enumerator.h"
#include "baseline/simulated_annealing.h"
#include "core/dse.h"
#include "core/optimized_mapping.h"
#include "reliability/design_eval.h"
#include "sched/mapping.h"
#include "taskgraph/task_graph.h"

#include <optional>
#include <string>

namespace seamap::bench {

/// The four experiments of Table II.
enum class Experiment {
    exp1_register_usage,
    exp2_parallelism,
    exp3_time_register_product,
    exp4_proposed,
};

inline const char* experiment_label(Experiment e) {
    switch (e) {
    case Experiment::exp1_register_usage: return "Exp:1 (reg. usage)";
    case Experiment::exp2_parallelism: return "Exp:2 (parallelism)";
    case Experiment::exp3_time_register_product: return "Exp:3 (reg&paral.)";
    case Experiment::exp4_proposed: return "Exp:4 (proposed)";
    }
    return "?";
}

/// Search effort knobs shared by all benches.
struct BenchBudget {
    std::uint64_t mapping_iterations = 4'000;
    std::uint64_t seed = 1;
};

/// One experiment's chosen design.
struct ExperimentDesign {
    ScalingVector levels;
    Mapping mapping;
    DesignMetrics metrics;
};

/// Optimize a mapping at a fixed scaling with the experiment's engine:
/// simulated annealing on the baseline objectives, the two-stage
/// proposed mapper for Exp:4.
std::optional<ExperimentDesign> optimize_at_scaling(const EvaluationContext& ctx,
                                                    Experiment experiment,
                                                    const BenchBudget& budget);

/// The full Fig. 4 loop for one experiment: enumerate scalings from the
/// lowest voltage, map with the experiment's engine, keep the
/// minimum-power feasible design (Gamma tie-break).
std::optional<ExperimentDesign> run_experiment(const TaskGraph& graph,
                                               const MpsocArchitecture& arch,
                                               double deadline_seconds, Experiment experiment,
                                               const BenchBudget& budget);

/// Deadline normalization for core-count sweeps (Table III, Fig. 10,
/// Fig. 11): 1.25x the two-core nominal-speed capacity. This makes the
/// real-time constraint *bind* the way the paper's does — two cores are
/// forced near nominal voltage while six cores reach the deepest
/// scaling — independent of our simulator's absolute speed.
double sweep_deadline_seconds(const TaskGraph& graph);

/// "2,2,3,2"-style rendering of a scaling vector.
std::string levels_to_string(const ScalingVector& levels);

/// "t1 t2 t3" task list of one core (1-based names like the paper).
std::string core_tasks_to_string(const TaskGraph& graph, const Mapping& mapping, CoreId core);

} // namespace seamap::bench
