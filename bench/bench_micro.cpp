// google-benchmark microbenchmarks of the library's hot kernels: list
// scheduling, register-union computation, Gamma estimation, full design
// evaluation, a simulated-annealing step, the scaling enumerator, a
// fault-injection trial, and the public-API search strategies behind
// their common interface. These are the per-iteration costs that
// determine how much design space a given search budget covers.
#include "reliability/register_usage.h"
#include "seamap/seamap.h"

#include "api/scenarios.h"
#include "core/initial_mapping.h"
#include "sim/campaign.h"
#include "sim/fault_injection.h"
#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"

#include <benchmark/benchmark.h>

#include <string>

namespace seamap {
namespace {

TaskGraph benchmark_graph(std::int64_t tasks) {
    if (tasks <= 11) return mpeg2_decoder_graph();
    TgffParams params;
    params.task_count = static_cast<std::size_t>(tasks);
    return generate_tgff_graph(params, 42);
}

void bm_list_scheduler(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const ScalingVector levels = {1, 2, 2, 3};
    const ListScheduler scheduler;
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler.schedule(graph, mapping, arch, levels));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(graph.task_count()));
}
BENCHMARK(bm_list_scheduler)->Arg(11)->Arg(60)->Arg(100);

void bm_register_union(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const Mapping mapping = round_robin_mapping(graph, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(per_core_register_bits(graph, mapping, 4));
    }
}
BENCHMARK(bm_register_union)->Arg(11)->Arg(60)->Arg(100);

void bm_gamma_estimate(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const ScalingVector levels = {1, 2, 2, 3};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    const SeuEstimator estimator{SerModel{}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimator.estimate(graph, mapping, arch, levels, schedule));
    }
}
BENCHMARK(bm_gamma_estimate)->Arg(11)->Arg(60)->Arg(100);

void bm_full_design_evaluation(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2, 3}, SeuEstimator{SerModel{}}, 10.0};
    const Mapping mapping = round_robin_mapping(graph, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluate_design(ctx, mapping));
    }
}
BENCHMARK(bm_full_design_evaluation)->Arg(11)->Arg(60)->Arg(100);

void bm_initial_sea_mapping(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2, 3}, SeuEstimator{SerModel{}}, 10.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(initial_sea_mapping(ctx));
    }
}
BENCHMARK(bm_initial_sea_mapping)->Arg(11)->Arg(60)->Arg(100);

void bm_sa_annealing_run(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(60);
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {2, 2, 2, 2}, SeuEstimator{SerModel{}}, 1e9};
    SaParams params;
    params.iterations = static_cast<std::uint64_t>(state.range(0));
    const SimulatedAnnealingMapper mapper(params);
    const Mapping initial = round_robin_mapping(graph, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.optimize(ctx, MappingObjective::seu_count, initial));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_sa_annealing_run)->Arg(100)->Arg(1000);

// The public-API contract both engines sit behind: one optimize-grade
// search per scaling, through a registry-made SearchStrategy. Measures
// what one explorer worker pays per scaling combination.
void bm_strategy_search(benchmark::State& state, const std::string& strategy_name) {
    const TaskGraph graph = benchmark_graph(60);
    const Problem problem = ProblemBuilder()
                                .graph(graph)
                                .architecture(4, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(1e9)
                                .build();
    const EvaluationContext ctx = problem.evaluation_context({2, 2, 2, 2});
    StrategyOptions options;
    options.max_iterations = static_cast<std::uint64_t>(state.range(0));
    const auto strategy = make_search_strategy(strategy_name, options);
    const Mapping initial = round_robin_mapping(graph, 4);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(strategy->search(ctx, initial, seed++));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK_CAPTURE(bm_strategy_search, optimized, "optimized")->Arg(100)->Arg(1000);
BENCHMARK_CAPTURE(bm_strategy_search, annealing, "annealing")->Arg(100)->Arg(1000);

// --- EvalContext before/after benches ---------------------------------
// Each pair runs the identical workload through the naive
// evaluate_design() path (EvalOptions::naive_reference) and the
// EvalContext fast path; results are bit-identical (pinned by
// tests/core/eval_context_equivalence_test.cpp), so the ratio is pure
// overhead removed.

EvalOptions eval_options(bool naive) {
    EvalOptions options;
    options.naive_reference = naive;
    return options;
}

// Full candidate evaluation: schedule + registers + Gamma + power.
void bm_eval_full(benchmark::State& state, bool naive) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2, 3}, SeuEstimator{SerModel{}}, 10.0};
    EvalContext eval(ctx, eval_options(naive));
    const Mapping mapping = round_robin_mapping(graph, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.evaluate(mapping));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(graph.task_count()));
}
BENCHMARK_CAPTURE(bm_eval_full, naive, true)->Arg(11)->Arg(60)->Arg(100);
BENCHMARK_CAPTURE(bm_eval_full, ctx, false)->Arg(11)->Arg(60)->Arg(100);

// Schedule-dominated evaluation on a fresh mapping every iteration (no
// base, no memo reuse possible): measures the precomputed-order,
// allocation-free timing pass against the naive list scheduler path.
void bm_eval_schedule(benchmark::State& state, bool naive) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {1, 2, 2, 3}, SeuEstimator{SerModel{}}, 10.0};
    EvalOptions options = eval_options(naive);
    options.memoize = false;
    EvalContext eval(ctx, options);
    Mapping mapping = round_robin_mapping(graph, 4);
    TaskId t = 0;
    for (auto _ : state) {
        mapping.assign(t, (mapping.core_of(t) + 1) % 4); // new mapping each iteration
        t = static_cast<TaskId>((t + 1) % graph.task_count());
        benchmark::DoNotOptimize(eval.evaluate(mapping));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(graph.task_count()));
}
BENCHMARK_CAPTURE(bm_eval_schedule, naive, true)->Arg(11)->Arg(60)->Arg(100);
BENCHMARK_CAPTURE(bm_eval_schedule, ctx, false)->Arg(11)->Arg(60)->Arg(100);

// The SA neighbourhood step — the explorer's dominant cost: one random
// move/swap off the current mapping, fully evaluated, occasionally
// accepted (rebasing the incremental anchor like the real walk does).
void bm_sa_neighborhood_step(benchmark::State& state, bool naive) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const EvaluationContext ctx{graph, arch, {2, 2, 2, 2}, SeuEstimator{SerModel{}}, 1e9};
    EvalContext eval(ctx, eval_options(naive));
    Mapping current = round_robin_mapping(graph, 4);
    eval.rebase(current);
    Rng rng(7);
    Mapping neighbor;
    std::uint64_t step = 0;
    for (auto _ : state) {
        neighbor = current;
        const NeighborOp op = random_neighbor_op(neighbor, rng, 0.3, false);
        if (op.kind != NeighborOp::Kind::none)
            benchmark::DoNotOptimize(eval.evaluate_neighbor(op));
        if (++step % 8 == 0) { // accept ~1 in 8, like a cooling walk
            std::swap(current, neighbor);
            eval.rebase(current);
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(bm_sa_neighborhood_step, naive, true)->Arg(11)->Arg(60)->Arg(100);
BENCHMARK_CAPTURE(bm_sa_neighborhood_step, ctx, false)->Arg(11)->Arg(60)->Arg(100);

// End-to-end Fig. 4 exploration through the public API.
void bm_explore_end_to_end(benchmark::State& state, bool naive) {
    const Problem problem = ProblemBuilder()
                                .graph(mpeg2_decoder_graph())
                                .architecture(4, VoltageScalingTable::arm7_three_level())
                                .deadline_seconds(mpeg2_deadline_seconds())
                                .build();
    ExploreOptions options;
    options.dse.search.max_iterations = 200;
    options.dse.eval = eval_options(naive);
    for (auto _ : state) {
        benchmark::DoNotOptimize(explore(problem, options));
    }
}
BENCHMARK_CAPTURE(bm_explore_end_to_end, naive, true);
BENCHMARK_CAPTURE(bm_explore_end_to_end, ctx, false);

// The bound-driven branch-and-bound explorer against the exhaustive
// Fig. 4 sweep, on the shared prunable scenario of api/scenarios.h (a
// pipelined private-register workload on a deep dyadic DVS ladder in
// a clock-tree-dominated power regime with nearly voltage-flat SER,
// under a time constraint at 2.5x the nominal T_M lower bound — the
// same Problem tests/core/dse_prune_test.cpp pins byte-identical
// best/pareto_front on). The pruned run just skips the provably
// dominated scaling combinations.
void bm_explore_prunable(benchmark::State& state, bool prune) {
    const Problem problem = prunable_pipeline_problem(8);
    ExploreOptions options;
    options.dse.search.max_iterations = 2'000;
    options.dse.prune = prune;
    options.dse.num_threads = static_cast<std::size_t>(state.range(0));
    DseResult last;
    for (auto _ : state) {
        last = explore(problem, options);
        benchmark::DoNotOptimize(last);
    }
    state.counters["searched"] = static_cast<double>(last.scalings_searched);
    state.counters["pruned"] = static_cast<double>(last.scalings_pruned);
}
BENCHMARK_CAPTURE(bm_explore_prunable, exhaustive, false)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_explore_prunable, pruned, true)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Multi-start saturation: with fewer runnable scalings than workers,
// K independent per-scaling starts (deterministic best-of-K fold) use
// the idle threads, so quadrupling the search effort costs far less
// than 4x wall-clock.
void bm_explore_multi_start(benchmark::State& state) {
    // Few gate-passing scalings, so single-start leaves workers idle.
    const Problem problem = prunable_pipeline_problem(3);
    ExploreOptions options;
    options.dse.search.max_iterations = 2'000;
    options.dse.num_threads = 8;
    options.dse.multi_start = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(explore(problem, options));
    }
}
BENCHMARK(bm_explore_multi_start)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The saturation curve behind the multi-start payoff property test
// (tests/core/dse_multi_start_test.cpp): K = 1/2/4/8 independent
// starts per scaling at a fixed 8 workers. Until K x runnable
// scalings saturates the pool, extra starts ride on idle threads —
// the wall-clock curve bends well below linear in K.
void bm_multi_start_saturation(benchmark::State& state) {
    const Problem problem = prunable_pipeline_problem(3);
    ExploreOptions options;
    options.dse.search.max_iterations = 1'000;
    options.dse.num_threads = 8;
    options.dse.multi_start = static_cast<std::size_t>(state.range(0));
    DseResult last;
    for (auto _ : state) {
        last = explore(problem, options);
        benchmark::DoNotOptimize(last);
    }
    state.counters["feasible"] = static_cast<double>(last.feasible_points.size());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(last.scalings_searched) *
                            state.range(0));
}
BENCHMARK(bm_multi_start_saturation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The giant-instance tentpole point: lazy bound-sorted enumeration on
// the committed 20349-slot acceptance scenario (see
// scale_acceptance_problem and tests/integration/dse_scale_test.cpp,
// which pins < 50% of slots emitted with byte-identical outputs).
// Single pass per measurement — these runs take tens of seconds, and
// the counters are the point: emitted/pruned tell the lazy-vs-
// materialized story, wall-clock the payoff.
void bm_explore_scale(benchmark::State& state, bool prune) {
    const Problem problem = scale_acceptance_problem();
    ExploreOptions options;
    options.dse.search.max_iterations = 300;
    options.dse.search.restarts = 1;
    options.dse.search.seed = 1;
    options.dse.prune = prune;
    options.dse.num_threads = static_cast<std::size_t>(state.range(0));
    DseResult last;
    for (auto _ : state) {
        last = explore(problem, options);
        benchmark::DoNotOptimize(last);
    }
    state.counters["total"] = static_cast<double>(last.scalings_total);
    state.counters["emitted"] = static_cast<double>(last.scalings_emitted);
    state.counters["searched"] = static_cast<double>(last.scalings_searched);
    state.counters["pruned"] = static_cast<double>(last.scalings_pruned);
}
BENCHMARK_CAPTURE(bm_explore_scale, materialized, false)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_explore_scale, lazy, true)
    ->Arg(1)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Raw giant-graph throughput of the --scale TGFF family: a 1000-task
// graph through the whole lazy pipeline (gate, bounds, SoA eval,
// calendar-queue scheduling) with a token per-slot budget.
void bm_explore_scale_tgff(benchmark::State& state) {
    const Problem problem = scale_problem(1000, 16, 3, 1);
    ExploreOptions options;
    options.dse.search.max_iterations = 5;
    options.dse.search.restarts = 1;
    options.dse.num_threads = static_cast<std::size_t>(state.range(0));
    DseResult last;
    for (auto _ : state) {
        last = explore(problem, options);
        benchmark::DoNotOptimize(last);
    }
    state.counters["total"] = static_cast<double>(last.scalings_total);
    state.counters["searched"] = static_cast<double>(last.scalings_searched);
}
BENCHMARK(bm_explore_scale_tgff)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_scaling_enumeration(benchmark::State& state) {
    const auto cores = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ScalingEnumerator enumerator(cores, 3);
        std::size_t count = 0;
        while (enumerator.next()) ++count;
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(bm_scaling_enumeration)->Arg(4)->Arg(8)->Arg(16);

void bm_fault_injection_trial(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const ScalingVector levels = {2, 2, 2, 2};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    const FaultInjector injector(SerModel{}, SimExposurePolicy::full_duration);
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            injector.inject(graph, mapping, arch, levels, schedule, rng));
    }
}
BENCHMARK(bm_fault_injection_trial)->Arg(11)->Arg(100);

// Campaign throughput, the BENCH_8 perf-trajectory point: injections/s
// of the serial single-loop FaultInjector::run_campaign vs the sharded
// CampaignEngine (register-file site only, so both run the identical
// per-trial draw sequence). The sharded engine dispatches shards over
// all hardware threads; on a 1-core machine the two measure the same
// per-trial cost and the comparison degenerates to the engine's
// dispatch overhead (the documented 1-core fallback).
constexpr std::uint64_t k_campaign_bench_trials = 2'000;

void bm_campaign_serial(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const ScalingVector levels = {2, 2, 2, 2};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    const FaultInjector injector(SerModel{}, SimExposurePolicy::full_duration);
    for (auto _ : state) {
        benchmark::DoNotOptimize(injector.run_campaign(graph, mapping, arch, levels,
                                                       schedule, k_campaign_bench_trials,
                                                       7));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k_campaign_bench_trials));
}
BENCHMARK(bm_campaign_serial)->Arg(11)->Arg(100)->Unit(benchmark::kMillisecond);

void bm_campaign_sharded(benchmark::State& state) {
    const TaskGraph graph = benchmark_graph(state.range(0));
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const Mapping mapping = round_robin_mapping(graph, 4);
    const ScalingVector levels = {2, 2, 2, 2};
    const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
    CampaignConfig config;
    config.trials = k_campaign_bench_trials;
    config.shard_size = 128;
    config.num_threads = 0; // hardware
    config.seed = 7;
    // Register-file site only: the identical draw sequence the serial
    // campaign runs, so items/s compare like for like.
    config.weights.pipeline = 0.0;
    config.weights.memory = 0.0;
    const CampaignEngine engine(SerModel{}, config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(graph, mapping, arch, levels, schedule));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k_campaign_bench_trials));
}
BENCHMARK(bm_campaign_sharded)->Arg(11)->Arg(100)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace seamap
