// Reproduces Table III of the paper: power consumption and SEUs
// experienced by the proposed optimization (Exp:4) across architecture
// allocations of 2..6 cores, for the MPEG-2 decoder and random task
// graphs of 20..100 tasks.
//
// Expected shape (paper): the minimum-power core count is application
// dependent (4 cores for the MPEG-2 decoder), and the SEUs experienced
// grow with the core count — more cores enable deeper voltage scaling
// and duplicate more shared registers.
//
// Deadlines: the paper's absolute deadlines are tied to its SystemC
// timing; we normalize per workload (1.25x the two-core nominal-speed
// capacity) so the constraint binds identically on our substrate —
// see EXPERIMENTS.md.
#include "bench_common.h"
#include "util/table.h"

#include "taskgraph/mpeg2.h"
#include "tgff/random_graph.h"
#include "util/strings.h"

#include <iostream>
#include <map>

using namespace seamap;
using namespace seamap::bench;

int main(int argc, char** argv) {
    BenchBudget budget;
    budget.mapping_iterations = argc > 1 ? parse_u64(argv[1]) : 2'500;
    budget.seed = argc > 2 ? parse_u64(argv[2]) : 7;
    const std::size_t max_cores = argc > 3 ? parse_u64(argv[3]) : 6;

    // Workload set: MPEG-2 plus the paper's random-graph sizes.
    std::vector<std::pair<std::string, TaskGraph>> apps;
    apps.emplace_back("MPEG-2", mpeg2_decoder_graph());
    for (const std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
        TgffParams params;
        params.task_count = n;
        apps.emplace_back(std::to_string(n) + " tasks", generate_tgff_graph(params, budget.seed));
    }

    std::cout << "# Table III: P (mW) and Gamma for Exp:4 across 2.." << max_cores
              << " cores (seed " << budget.seed << ")\n\n";
    std::vector<std::string> headers = {"App."};
    for (std::size_t cores = 2; cores <= max_cores; ++cores) {
        headers.push_back(std::to_string(cores) + "c P");
        headers.push_back(std::to_string(cores) + "c Gamma");
    }
    TableWriter table(headers);

    std::map<std::string, std::vector<double>> gamma_series;
    std::map<std::string, std::vector<double>> power_series;
    for (const auto& [name, graph] : apps) {
        const double deadline = sweep_deadline_seconds(graph);
        std::vector<std::string> row = {name};
        for (std::size_t cores = 2; cores <= max_cores; ++cores) {
            const MpsocArchitecture arch(cores, VoltageScalingTable::arm7_three_level());
            const auto design =
                run_experiment(graph, arch, deadline, Experiment::exp4_proposed, budget);
            if (!design) {
                row.push_back("-");
                row.push_back("-");
                continue;
            }
            row.push_back(fmt_double(design->metrics.power_mw, 2));
            row.push_back(fmt_sci(design->metrics.gamma, 2));
            gamma_series[name].push_back(design->metrics.gamma);
            power_series[name].push_back(design->metrics.power_mw);
        }
        table.add_row(std::move(row));
    }
    table.print_text(std::cout);

    std::cout << "\n# ---- paper-vs-measured shape summary ----\n";
    for (const auto& [name, gammas] : gamma_series) {
        if (gammas.size() < 2) continue;
        std::size_t rises = 0;
        for (std::size_t i = 1; i < gammas.size(); ++i)
            if (gammas[i] > gammas[i - 1]) ++rises;
        const auto& powers = power_series[name];
        std::size_t min_power_index = 0;
        for (std::size_t i = 1; i < powers.size(); ++i)
            if (powers[i] < powers[min_power_index]) min_power_index = i;
        std::cout << "# " << name << ": Gamma rises on " << rises << "/" << gammas.size() - 1
                  << " core-count steps (paper: monotone rise); min-P core count = "
                  << min_power_index + 2 << " (paper: app-dependent middle)\n";
    }
    std::cout << "# paper reference rows (P mW / Gamma x1e5):\n"
                 "#   MPEG-2: 9.1/2.13  5.9/3.17  4.25/3.93  6.34/4.95  7.24/5.36\n"
                 "#   60 tasks: 7.8/1.87  4.13/3.25  5.1/4.82  4.9/5.74  5.3/7.15\n";
    return 0;
}
