// Ablation: register exposure semantics. The reproduction's default is
// full_duration (register banks hold live state for the entire run —
// the only reading under which the paper's Section III observations
// cohere); busy_only is eq. (7) taken literally. This bench shows how
// the choice changes (a) the Gamma landscape over mappings and (b) the
// design the optimizer picks.
#include "bench_common.h"
#include "util/table.h"

#include "core/dse.h"
#include "taskgraph/mpeg2.h"
#include "util/rng.h"
#include "util/strings.h"

#include <algorithm>
#include <iostream>

using namespace seamap;
using namespace seamap::bench;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? parse_u64(argv[1]) : 13;

    const TaskGraph graph = mpeg2_decoder_graph();
    const MpsocArchitecture arch(4, VoltageScalingTable::arm7_three_level());
    const ScalingVector levels(4, 1);
    Rng rng(seed);

    // (a) Landscape: correlation between the two policies' Gamma over
    // random mappings, and where each policy's minimum sits.
    std::cout << "# Ablation: exposure policy (full_duration vs busy_only), MPEG-2, 4 cores\n\n";
    const std::size_t samples = 150;
    std::vector<double> full_values, busy_values, tm_values;
    for (std::size_t i = 0; i < samples; ++i) {
        Mapping mapping(graph.task_count(), 4);
        for (TaskId t = 0; t < graph.task_count(); ++t)
            mapping.assign(t, static_cast<CoreId>(rng.uniform_int(0, 3)));
        const Schedule schedule = ListScheduler{}.schedule(graph, mapping, arch, levels);
        const SeuEstimator full{SerModel{}, ExposurePolicy::full_duration};
        const SeuEstimator busy{SerModel{}, ExposurePolicy::busy_only};
        full_values.push_back(full.estimate(graph, mapping, arch, levels, schedule).total);
        busy_values.push_back(busy.estimate(graph, mapping, arch, levels, schedule).total);
        tm_values.push_back(schedule.total_time_seconds);
    }
    const std::size_t full_min =
        static_cast<std::size_t>(std::min_element(full_values.begin(), full_values.end()) -
                                 full_values.begin());
    const std::size_t busy_min =
        static_cast<std::size_t>(std::min_element(busy_values.begin(), busy_values.end()) -
                                 busy_values.begin());
    const auto tm_extremes = std::minmax_element(tm_values.begin(), tm_values.end());
    std::cout << "min-Gamma T_M under full_duration: " << fmt_double(tm_values[full_min], 2)
              << " s (range " << fmt_double(*tm_extremes.first, 2) << " .. "
              << fmt_double(*tm_extremes.second, 2) << " s)\n";
    std::cout << "min-Gamma T_M under busy_only    : " << fmt_double(tm_values[busy_min], 2)
              << " s\n";
    std::cout << "# full_duration penalizes long T_M (interior optimum — the paper's\n"
                 "# concave Fig. 3b); busy_only rewards maximal spreading.\n\n";

    // (b) What each policy makes the DSE choose.
    TableWriter table({"policy", "levels", "P (mW)", "Gamma (own)", "Gamma (full_duration)"});
    for (const auto policy : {ExposurePolicy::full_duration, ExposurePolicy::busy_only}) {
        DseParams params;
        params.search.max_iterations = 3'000;
        params.search.seed = seed;
        const DesignSpaceExplorer explorer{SerModel{}, policy};
        const DseResult result =
            explorer.explore(graph, arch, mpeg2_deadline_seconds(), params);
        if (!result.best) continue;
        // Re-score the chosen design under the reference policy.
        const EvaluationContext reference{graph, arch, result.best->levels,
                                          SeuEstimator{SerModel{}, ExposurePolicy::full_duration},
                                          mpeg2_deadline_seconds()};
        const DesignMetrics rescored = evaluate_design(reference, result.best->mapping);
        table.add_row({policy == ExposurePolicy::full_duration ? "full_duration" : "busy_only",
                       levels_to_string(result.best->levels),
                       fmt_double(result.best->metrics.power_mw, 2),
                       fmt_sci(result.best->metrics.gamma, 3), fmt_sci(rescored.gamma, 3)});
    }
    table.print_text(std::cout);
    std::cout << "\n# last column: optimizing under the wrong exposure model leaves SEUs\n"
                 "# on the table when scored under the reference (full_duration) model.\n";
    return 0;
}
